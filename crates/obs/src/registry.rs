//! The metrics registry: named handles to atomic counters, gauges, and
//! histograms.
//!
//! Lookup (`counter`, `gauge`, `histogram` and their `_with` label
//! variants) takes a mutex and allocates; callers do it once — at
//! construction time or through a `OnceLock` in the [`crate::span!`]-style
//! macros — and then record through the returned `Arc` handle, which is
//! pure relaxed atomics. The registry itself is therefore never on the hot
//! path.
//!
//! There is one process-wide registry ([`Registry::global`]) for library
//! instrumentation (pipeline, core, fpga), and components that need
//! isolation (each serve daemon instance, tests) can own private
//! `Registry` values; [`crate::export`] renders any set of registries
//! together.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically non-decreasing `u64` metric.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A free-standing counter (registry-less, for tests or struct fields).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, v: u64) {
        if !crate::COMPILED {
            return;
        }
        let prev = self.0.fetch_add(v, Ordering::Relaxed);
        if prev > u64::MAX - v {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `v` if `v` is larger (keeps the metric
    /// monotone when syncing from an external absolute count).
    #[inline]
    pub fn set_to(&self, v: u64) {
        if !crate::COMPILED {
            return;
        }
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, backlogs, occupancy).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if !crate::COMPILED {
            return;
        }
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::COMPILED {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Identity of a metric: name + sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    MetricKey { name: name.to_string(), labels }
}

pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A namespace of metrics. See the module docs for the global-vs-instance
/// split.
#[derive(Default)]
pub struct Registry {
    pub(crate) metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry used by library instrumentation.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m.entry(key(name, labels)).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Gets or creates the histogram `name{labels}`.
    ///
    /// # Panics
    /// If `name{labels}` is already registered as a different metric type.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Number of registered metrics (all types).
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry poisoned").len()
    }

    /// Whether the registry holds no metrics yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_are_shared_per_key() {
        let r = Registry::new();
        let a = r.counter("seqge_test_total");
        let b = r.counter("seqge_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
        // Different labels → different series.
        let c = r.counter_with("seqge_test_total", &[("op", "ping")]);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
        assert_eq!(r.len(), 2);
        // Label order does not matter.
        let d = r.counter_with("seqge_lbl", &[("a", "1"), ("b", "2")]);
        let e = r.counter_with("seqge_lbl", &[("b", "2"), ("a", "1")]);
        d.inc();
        assert_eq!(e.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("seqge_test_metric");
        r.gauge("seqge_test_metric");
    }

    #[test]
    fn counter_saturates_and_set_to_is_monotone() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        let c2 = Counter::new();
        c2.set_to(10);
        c2.set_to(4); // lower: ignored
        assert_eq!(c2.get(), 10);
        c2.set_to(12);
        assert_eq!(c2.get(), 12);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    /// Many threads hammering the same registry: handle lookup races and
    /// recording races must both be loss-free.
    #[test]
    fn registry_survives_concurrent_hammering() {
        let r = Arc::new(Registry::new());
        let threads = 8;
        let iters = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = r.clone();
                thread::spawn(move || {
                    // Every thread looks up the same three metrics fresh
                    // (worst case: all lookups race) and records.
                    for i in 0..iters {
                        r.counter("seqge_hammer_total").inc();
                        r.gauge("seqge_hammer_depth").add(if i % 2 == 0 { 1 } else { -1 });
                        r.histogram("seqge_hammer_ns").record(t * 100 + i % 50);
                        r.counter_with("seqge_hammer_ops_total", &[("op", "x")]).inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("seqge_hammer_total").get(), threads * iters);
        assert_eq!(r.counter_with("seqge_hammer_ops_total", &[("op", "x")]).get(), threads * iters);
        assert_eq!(r.gauge("seqge_hammer_depth").get(), 0);
        let h = r.histogram("seqge_hammer_ns");
        assert_eq!(h.count(), threads * iters);
        assert!(h.max() >= (threads - 1) * 100);
        assert_eq!(r.len(), 4);
    }
}
