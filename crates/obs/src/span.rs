//! RAII span timers feeding histograms.
//!
//! ```ignore
//! let _g = seqge_obs::span!("seqge_core_train_walk_ns");
//! train_one_walk(...); // duration recorded in ns when _g drops
//! ```
//!
//! The clock read is gated on [`crate::timing_enabled`] (one atomic load),
//! so `SEQGE_OBS=off` turns every span into a no-op without recompiling.
//! The `span!` macro caches its histogram handle in a per-call-site
//! `OnceLock`, so steady-state cost is: one load (gate) + two `Instant`
//! reads + one histogram record.

use crate::hist::Histogram;
use std::time::Instant;

/// Live timer; records elapsed nanoseconds into its histogram on drop.
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// Starts a span against `hist` (no clock read when timing is off).
    pub fn start(hist: &'a Histogram) -> Self {
        let start = if crate::timing_enabled() { Some(Instant::now()) } else { None };
        SpanGuard { hist, start }
    }

    /// Ends the span early, recording now rather than at scope exit.
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos();
            self.hist.record(ns.min(u64::MAX as u128) as u64);
        }
    }
}

/// Starts a [`SpanGuard`] against a histogram in the global registry,
/// caching the handle per call site. Bind the result: `let _g = span!(..)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HIST: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        $crate::SpanGuard::start(HIST.get_or_init(|| $crate::Registry::global().histogram($name)))
    }};
}

/// A `&'static Counter` from the global registry, cached per call site.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static C: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> = std::sync::OnceLock::new();
        &**C.get_or_init(|| $crate::Registry::global().counter($name))
    }};
    ($name:expr, $($k:expr => $v:expr),+) => {{
        static C: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> = std::sync::OnceLock::new();
        &**C.get_or_init(|| $crate::Registry::global().counter_with($name, &[$(($k, $v)),+]))
    }};
}

/// A `&'static Gauge` from the global registry, cached per call site.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static G: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> = std::sync::OnceLock::new();
        &**G.get_or_init(|| $crate::Registry::global().gauge($name))
    }};
    ($name:expr, $($k:expr => $v:expr),+) => {{
        static G: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> = std::sync::OnceLock::new();
        &**G.get_or_init(|| $crate::Registry::global().gauge_with($name, &[$(($k, $v)),+]))
    }};
}

/// A `&'static Histogram` from the global registry, cached per call site.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static H: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        &**H.get_or_init(|| $crate::Registry::global().histogram($name))
    }};
    ($name:expr, $($k:expr => $v:expr),+) => {{
        static H: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        &**H.get_or_init(|| $crate::Registry::global().histogram_with($name, &[$(($k, $v)),+]))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_time() {
        let _guard = crate::TEST_TIMING_LOCK.lock().unwrap();
        crate::set_timing_enabled(true);
        let h = Histogram::new();
        {
            let _g = SpanGuard::start(&h);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        if crate::COMPILED {
            assert_eq!(h.count(), 1);
            assert!(h.max() >= 1_000_000, "slept 2ms, recorded {}ns", h.max());
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn disabled_timing_skips_recording() {
        let _guard = crate::TEST_TIMING_LOCK.lock().unwrap();
        crate::set_timing_enabled(false);
        let h = Histogram::new();
        {
            let _g = SpanGuard::start(&h);
        }
        assert_eq!(h.count(), 0);
        crate::set_timing_enabled(true);
    }

    #[test]
    fn span_macro_lands_in_global_registry() {
        let _guard = crate::TEST_TIMING_LOCK.lock().unwrap();
        crate::set_timing_enabled(true);
        {
            let _g = crate::span!("seqge_obs_test_span_ns");
        }
        let h = crate::Registry::global().histogram("seqge_obs_test_span_ns");
        if crate::COMPILED {
            assert!(h.count() >= 1);
        }
        static_counter!("seqge_obs_test_total").inc();
        static_counter!("seqge_obs_test_ops_total", "op" => "x").add(2);
        static_gauge!("seqge_obs_test_depth").inc();
        static_histogram!("seqge_obs_test_sizes").record(7);
        if crate::COMPILED {
            assert_eq!(crate::Registry::global().counter("seqge_obs_test_total").get(), 1);
            assert_eq!(
                crate::Registry::global()
                    .counter_with("seqge_obs_test_ops_total", &[("op", "x")])
                    .get(),
                2
            );
        }
    }
}
