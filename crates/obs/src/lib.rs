//! # seqge-obs — zero-dependency tracing + metrics for the seqge workspace
//!
//! The paper's claims are timing claims (Tables 3–6: ns/walk, stage
//! occupancy, DMA overlap), so the runtime system needs first-class
//! visibility rather than per-experiment bench binaries. This crate is the
//! shared observability layer, pure `std` like the rest of the workspace:
//!
//! * [`Registry`] — a global (or per-instance) metrics registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s with
//!   p50/p90/p99/max readout. Handle lookup takes a mutex once; recording
//!   through a held handle is a relaxed atomic RMW, safe to call from the
//!   training hot loop.
//! * [`span!`] — RAII timer guards feeding histograms
//!   (`let _g = span!("seqge_core_train_walk_ns");`). Timer starts are
//!   gated on one atomic load ([`timing_enabled`]) so `SEQGE_OBS=off`
//!   removes every `Instant::now` call from the hot path.
//! * [`log`] — a leveled structured logger emitting JSONL to stderr (or a
//!   file), controlled by `SEQGE_LOG` / [`log::set_level`]. Replaces the
//!   ad-hoc `eprintln!`s that used to live in the serve daemon.
//! * [`export`] — renders one or more registries as Prometheus
//!   text-exposition format or a JSON document; the serve daemon's
//!   `metrics` op and `seqge obs dump` are thin wrappers over these.
//!
//! ## Naming scheme
//!
//! `seqge_<subsystem>_<metric>_<unit>`: subsystem is the crate-ish area
//! (`pipeline`, `core`, `serve`, `fpga`), durations are `_ns`, monotonic
//! counts end in `_total`, gauges are bare nouns. Label sets stay tiny
//! (`op`, `stage`) so the registry map stays small and lookups stay rare.
//!
//! ## Overhead budget
//!
//! Counters/gauges/histogram records are always live when compiled in:
//! each is one relaxed `fetch_add`-class op, and the serve daemon's
//! correctness-relevant stats ride on them. The runtime switch only gates
//! clock reads (spans). Building with `--features disabled` compiles every
//! recording path to a no-op for A/B overhead measurement
//! (`results/bench_obs.json` holds the evidence; budget is <2% on the
//! pipelined-training bench).

pub mod export;
pub mod flightrec;
pub mod hist;
pub mod log;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use span::SpanGuard;
pub use trace::{Span, SpanRecord, TraceCtx};

use std::sync::atomic::{AtomicU8, Ordering};

/// `true` unless the crate was built with `--features disabled`.
///
/// When `false`, every recording call in this crate is a no-op and the
/// optimizer deletes the call sites outright (the compiled-out arm of the
/// overhead bench).
pub const COMPILED: bool = cfg!(not(feature = "disabled"));

/// Tri-state so the first read can lazily consult `SEQGE_OBS`.
const TIMING_UNSET: u8 = 2;
static TIMING: AtomicU8 = AtomicU8::new(TIMING_UNSET);

/// Runtime switch for span timers (clock reads). Counters and histogram
/// records stay live either way — they are plain atomics and the serve
/// stats depend on them.
///
/// Defaults from the `SEQGE_OBS` environment variable: `0`, `off`, or
/// `false` disable timing; anything else (or unset) enables it.
pub fn timing_enabled() -> bool {
    if !COMPILED {
        return false;
    }
    match TIMING.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on =
                !matches!(std::env::var("SEQGE_OBS").as_deref(), Ok("0") | Ok("off") | Ok("false"));
            TIMING.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the `SEQGE_OBS` default for span timing at runtime.
pub fn set_timing_enabled(on: bool) {
    TIMING.store(on as u8, Ordering::Relaxed);
}

/// Serializes tests that toggle the global timing switch (unit tests run
/// in parallel threads within one process).
#[cfg(test)]
pub(crate) static TEST_TIMING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_switch_round_trips() {
        let _guard = TEST_TIMING_LOCK.lock().unwrap();
        set_timing_enabled(false);
        assert!(!timing_enabled());
        set_timing_enabled(true);
        assert_eq!(timing_enabled(), COMPILED);
    }
}
