//! Log-linear histogram with lock-free recording and quantile readout.
//!
//! Values land in buckets spaced like HDR-histogram's coarse mode: each
//! power-of-two octave is split into 4 linear sub-buckets, so relative
//! bucket width is ≤ 25% everywhere — good enough for p50/p90/p99 latency
//! readout while keeping the whole histogram a fixed 252-slot array of
//! relaxed atomics (recording is one `fetch_add` + one `fetch_max`, no
//! locks, no allocation).

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets 0..=3 cover values 0..=3 exactly; octaves 2..=63 contribute 4
/// sub-buckets each: `4 + (63 - 2 + 1) * 4 = 252`.
pub const NUM_BUCKETS: usize = 252;

/// Index of the bucket covering `v`. Total order: bucket lower bounds are
/// strictly increasing and every `u64` maps somewhere.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 2
    let sub = ((v >> (octave - 2)) & 3) as usize; // top two bits after the leading 1
    4 * octave - 4 + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let octave = (i + 4) / 4;
    let sub = (i + 4) % 4;
    (1u64 << octave).saturating_add((sub as u64) << (octave - 2))
}

/// Exclusive upper bound of bucket `i` (saturates at `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1)
    }
}

/// Saturating atomic add: totals stick at `u64::MAX` instead of wrapping,
/// so a long-running process can never report a small-looking sum.
#[inline]
fn saturating_fetch_add(a: &AtomicU64, v: u64) {
    let prev = a.fetch_add(v, Ordering::Relaxed);
    if prev > u64::MAX - v {
        a.store(u64::MAX, Ordering::Relaxed);
    }
}

/// A fixed-size concurrent histogram of `u64` samples (by convention,
/// nanoseconds for `_ns` metrics, plain counts otherwise).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample. Lock-free; relaxed ordering (readers see a
    /// consistent-enough view for monitoring, never torn per-cell values).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::COMPILED {
            return;
        }
        saturating_fetch_add(&self.count, 1);
        saturating_fetch_add(&self.sum, v);
        self.max.fetch_max(v, Ordering::Relaxed);
        saturating_fetch_add(&self.buckets[bucket_index(v)], 1);
    }

    /// Total samples recorded (saturating).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated inside the
    /// containing bucket. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy for readout (individual cells are read
    /// relaxed; the snapshot is not a cross-cell atomic cut, which is fine
    /// for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of a [`Histogram`] for quantile math and export.
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket counts.
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: q=0 → first, q=1 → last.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lo = bucket_lower(i) as f64;
                // Largest value the bucket can hold, clipped to the
                // observed max so a single sample reports itself rather
                // than its bucket ceiling.
                let hi = bucket_upper(i).saturating_sub(1).min(self.max) as f64;
                let frac = (rank - cum) as f64 / n as f64;
                return lo + (hi - lo).max(0.0) * frac;
            }
            cum += n;
        }
        self.max as f64 // only reachable if counts saturated inconsistently
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_monotone_and_total() {
        let mut last = 0usize;
        let mut probes: Vec<u64> = (0..=1024).collect();
        for shift in 10..64 {
            probes.push(1u64 << shift);
            probes.push((1u64 << shift) + 1);
            probes.push((1u64 << shift) - 1);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        for &v in &probes {
            let b = bucket_index(v);
            assert!(b < NUM_BUCKETS, "v={v} → bucket {b}");
            assert!(b >= last, "bucket index must be monotone in v (v={v})");
            assert!(bucket_lower(b) <= v, "lower bound above v={v}");
            assert!(v < bucket_upper(b) || bucket_upper(b) == u64::MAX, "v={v} above upper");
            last = b;
        }
        // Bounds tile the line: upper(i) == lower(i+1).
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1), "gap after bucket {i}");
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn single_sample_reports_itself() {
        let h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1000);
        assert_eq!(h.max(), 1000);
        // Every quantile of a one-sample distribution is that sample; the
        // max-clipped interpolation keeps it inside the bucket.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(
                (960.0..=1000.0).contains(&est),
                "q={q} estimated {est}, bucket of 1000 is [960, 1024)"
            );
        }
    }

    #[test]
    fn quantiles_track_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let est = h.quantile(q);
            let rel = (est - expect).abs() / expect;
            assert!(rel < 0.15, "q={q}: estimated {est}, want ≈{expect} (rel err {rel:.3})");
        }
        assert_eq!(h.max(), 10_000);
        assert!(h.quantile(1.0) <= 10_000.0);
    }

    #[test]
    fn zero_and_extreme_values_are_representable() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0.0); // rank 1 lands in the zero bucket
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn sums_saturate_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // would wrap a plain fetch_add
        assert_eq!(h.sum(), u64::MAX, "sum must saturate");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Quantiles still answer sanely.
        assert!(h.quantile(0.5) > 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t * 1_000 + (i % 997));
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.count(), threads * per);
        let bucket_total: u64 = h.snapshot().buckets.iter().sum();
        assert_eq!(bucket_total, threads * per);
    }
}
