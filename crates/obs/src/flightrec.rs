//! Crash flight recorder: a bounded ring of recent JSONL log lines plus
//! the recent completed spans from [`crate::trace`], dumpable as one JSON
//! document so post-mortems (chaos kills, panics, SIGTERM) can reconstruct
//! what the process was doing.
//!
//! The recorder is passive until [`configure`] points it at a directory
//! (typically from `SEQGE_FLIGHTREC` via [`configure_from_env`]). Once
//! configured it:
//!
//! * installs a panic hook that dumps before delegating to the previous
//!   hook (covers `SEQGE_FAULT` trainer panics and any other crash that
//!   unwinds);
//! * spawns a background thread rewriting the dump every
//!   `SEQGE_FLIGHTREC_PERIOD_MS` (default 2000) so even an untrappable
//!   `kill -9` leaves a dump at most one period stale;
//! * lets the embedding process call [`dump`] explicitly on its graceful
//!   SIGTERM/SIGINT path.
//!
//! Dump path: `<dir>/flightrec-<pid>.json`. Format:
//!
//! ```json
//! {"pid":1234,"role":"serve","dumped_unix_ms":...,
//!  "spans":[{span jsonl objects}],"logs":[{log jsonl objects}]}
//! ```
//!
//! Log capture is a tee inside [`crate::log::log`]: every formatted record
//! is pushed into a 256-line ring regardless of the sink, one short mutex
//! push per emitted line (levels that are disabled never get here).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Recent log lines retained per process.
pub const LOG_RING_CAP: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HOOKS: Once = Once::new();

fn log_ring() -> &'static Mutex<VecDeque<String>> {
    static RING: OnceLock<Mutex<VecDeque<String>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(LOG_RING_CAP)))
}

fn state() -> &'static Mutex<Option<(PathBuf, String)>> {
    static STATE: OnceLock<Mutex<Option<(PathBuf, String)>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Tees a formatted log record into the ring. Called by the logger for
/// every emitted line; cheap (one mutex push) and bounded.
pub(crate) fn record_log(line: &str) {
    let mut ring = log_ring().lock().unwrap();
    if ring.len() == LOG_RING_CAP {
        ring.pop_front();
    }
    ring.push_back(line.to_string());
}

/// Points the recorder at `dir` (created if missing), labels dumps with
/// `role`, installs the panic hook, and starts the periodic writer.
pub fn configure(dir: &Path, role: &str) {
    let _ = std::fs::create_dir_all(dir);
    *state().lock().unwrap() = Some((dir.to_path_buf(), role.to_string()));
    ENABLED.store(true, Ordering::Relaxed);
    HOOKS.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump();
            prev(info);
        }));
        let period = std::env::var("SEQGE_FLIGHTREC_PERIOD_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(2000);
        if period > 0 {
            std::thread::Builder::new()
                .name("seqge-flightrec".into())
                .spawn(move || loop {
                    std::thread::sleep(Duration::from_millis(period));
                    let _ = dump();
                })
                .ok();
        }
    });
}

/// Configures from the `SEQGE_FLIGHTREC` environment variable (a directory
/// path) if set. Returns whether the recorder ended up enabled.
pub fn configure_from_env(role: &str) -> bool {
    if let Ok(dir) = std::env::var("SEQGE_FLIGHTREC") {
        let dir = dir.trim();
        if !dir.is_empty() {
            configure(Path::new(dir), role);
        }
    }
    enabled()
}

/// `true` once [`configure`] has run.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Renders the current flight-recorder document (always available, even
/// when no dump directory is configured — the `flightrec` protocol op
/// serves this live).
pub fn document(role: &str) -> String {
    let unix_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let (spans, cursor) = crate::trace::snapshot_since(0);
    let mut s = String::with_capacity(4096);
    s.push_str(&format!(
        "{{\"pid\":{},\"role\":\"{}\",\"dumped_unix_ms\":{unix_ms},\"span_cursor\":{cursor},\
         \"spans\":[",
        std::process::id(),
        role.replace('"', "'"),
    ));
    for (i, rec) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&crate::trace::jsonl_line(rec));
    }
    s.push_str("],\"logs\":[");
    {
        let ring = log_ring().lock().unwrap();
        for (i, line) in ring.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // Log records are already JSON objects (crate::log::format_record).
            s.push_str(line);
        }
    }
    s.push_str("]}");
    s
}

/// Writes `<dir>/flightrec-<pid>.json` atomically (tmp + rename). No-op
/// returning `None` when unconfigured.
pub fn dump() -> Option<PathBuf> {
    let (dir, role) = state().lock().unwrap().clone()?;
    let doc = document(&role);
    let path = dir.join(format!("flightrec-{}.json", std::process::id()));
    let tmp = dir.join(format!(".flightrec-{}.tmp", std::process::id()));
    std::fs::write(&tmp, doc).ok()?;
    std::fs::rename(&tmp, &path).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_embeds_logs_and_is_json_shaped() {
        record_log(r#"{"ts_ms":1,"level":"info","target":"t","msg":"hello"}"#);
        let doc = document("test");
        assert!(doc.starts_with("{\"pid\":"));
        assert!(doc.contains("\"role\":\"test\""));
        assert!(doc.contains("\"spans\":["));
        assert!(doc.contains("\"msg\":\"hello\""));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn log_ring_is_bounded() {
        for i in 0..(LOG_RING_CAP + 50) {
            record_log(&format!(r#"{{"ts_ms":{i},"level":"info","target":"t","msg":"m{i}"}}"#));
        }
        assert_eq!(log_ring().lock().unwrap().len(), LOG_RING_CAP);
    }

    #[test]
    fn dump_writes_parseable_file() {
        let dir = std::env::temp_dir().join(format!("seqge_flightrec_test_{}", std::process::id()));
        configure(&dir, "test");
        let path = dump().expect("dump path");
        let body = std::fs::read_to_string(&path).expect("dump readable");
        assert!(body.starts_with('{') && body.ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
