//! Adversarial protocol-framing property tests.
//!
//! The serve plane talks line-delimited JSON to whoever connects; nothing
//! guarantees the peer is our client. These tests throw arbitrary bytes,
//! truncated requests, type-confused JSON, and oversized lines at a live
//! server and assert the contract from DESIGN.md: every complete line gets
//! exactly one reply (`ok:false` with an `error` string for garbage), the
//! connection survives everything except the line-length cap, and the
//! server never panics or wedges — a valid `ping` still answers afterward.

use proptest::prelude::*;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_sampling::UpdatePolicy;
use seqge_serve::protocol::MAX_LINE_BYTES;
use seqge_serve::{boot_cold, start, ServeConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const DIM: usize = 4;
const SEED: u64 = 9;

/// One shared server for every generated case (cases are connection-local,
/// so isolation is per-TCP-stream, exactly like production). The handle is
/// forgotten: the server lives for the test binary's lifetime.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let graph = erdos_renyi(12, 0.3, 42);
        let mut cfg = seqge_core::TrainConfig::paper_defaults(DIM);
        cfg.walk.walk_length = 8;
        cfg.walk.walks_per_node = 1;
        let ocfg = seqge_core::OsElmConfig {
            model: cfg.model,
            ..seqge_core::OsElmConfig::paper_defaults(DIM)
        };
        let (model, inc) = boot_cold(&graph, &cfg, ocfg, UpdatePolicy::every_edge(), SEED);
        let handle = start("127.0.0.1:0", graph, model, inc, ServeConfig::default())
            .expect("prop server boots");
        let addr = handle.addr();
        std::mem::forget(handle);
        addr
    })
}

fn connect() -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server_addr()).expect("connect");
    // A reply slower than this counts as a hang — the property under test.
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// Sends one raw line and returns the reply line (without newline).
fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &[u8]) -> String {
    stream.write_all(line).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("server must reply, not hang");
    assert!(n > 0, "server closed instead of replying");
    reply.trim_end().to_string()
}

/// Asserts the reply is a JSON object with `ok:false` and an error string.
fn assert_error_reply(reply: &str) -> String {
    let v: Value =
        serde_json::from_str(reply).unwrap_or_else(|e| panic!("reply is not JSON ({e}): {reply}"));
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "garbage must be refused: {reply}");
    v.get("error").and_then(Value::as_str).expect("error string present").to_string()
}

/// Asserts the connection still works by round-tripping a ping.
fn assert_alive(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    let reply = send_raw(stream, reader, br#"{"cmd":"ping"}"#);
    let v: Value = serde_json::from_str(&reply).expect("ping reply is JSON");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "ping after garbage: {reply}");
}

/// Valid-JSON-but-wrong requests: unknown commands, missing fields, type
/// confusion, nested junk. Indexed so the strategy stays a plain range.
const CONFUSED: &[&str] = &[
    r#"{"cmd":"no_such_op"}"#,
    r#"{"cmd":42}"#,
    r#"{"cmd":null}"#,
    r#"{}"#,
    r#"[]"#,
    r#""ping""#,
    r#"{"cmd":"add_edge"}"#,
    r#"{"cmd":"add_edge","u":"zero","v":1}"#,
    r#"{"cmd":"add_edge","u":-1,"v":1}"#,
    r#"{"cmd":"topk","node":0,"k":"five"}"#,
    r#"{"cmd":"topk","node":{"nested":[]},"k":1}"#,
    r#"{"cmd":"get_embedding","node":1e99}"#,
    r#"{"cmd":"score_link","u":0}"#,
    r#"{"cmd":"metrics","format":7}"#,
    r#"{"CMD":"ping"}"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary non-newline bytes: one error reply per line, connection
    /// survives, and a ping still answers.
    #[test]
    fn arbitrary_bytes_get_an_error_reply_and_never_wedge(
        raw in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let line: Vec<u8> = raw.iter().map(|&b| if b == b'\n' { b' ' } else { b }).collect();
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, &line);
        // An all-whitespace line is "empty request line"; anything else is
        // a parse error. Either way: ok:false, connection intact.
        assert_error_reply(&reply);
        assert_alive(&mut stream, &mut reader);
    }

    /// Every proper prefix of a valid request is refused without closing
    /// the connection (a cut can never silently apply a write).
    #[test]
    fn truncated_requests_are_refused_not_applied(
        u in 0u32..12, v in 0u32..12, pct in 0usize..100,
    ) {
        let full = format!(r#"{{"cmd":"add_edge","u":{u},"v":{v}}}"#);
        let cut = pct * (full.len() - 1) / 100; // always a *proper* prefix
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, &full.as_bytes()[..cut]);
        assert_error_reply(&reply);
        assert_alive(&mut stream, &mut reader);
    }

    /// Well-formed JSON that is not a well-formed request: refused with an
    /// error naming the problem, never a panic or a fallthrough success.
    #[test]
    fn type_confused_json_is_refused(idx in 0usize..15) {
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, CONFUSED[idx].as_bytes());
        let err = assert_error_reply(&reply);
        assert!(!err.is_empty(), "error message must not be empty");
        assert_alive(&mut stream, &mut reader);
    }

    /// A line that grows past the cap gets one error reply and a close —
    /// the server must not buffer unboundedly or hang mid-line.
    #[test]
    fn oversized_lines_are_answered_then_closed(pad in 1usize..1024) {
        let (mut stream, mut reader) = connect();
        let line = vec![b'x'; MAX_LINE_BYTES + pad];
        stream.write_all(&line).expect("write oversized");
        // No newline sent: the cap must trip on the unterminated line.
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("cap reply, not a hang");
        let err = assert_error_reply(reply.trim_end());
        prop_assert!(err.contains("exceeds"), "cap error names the limit: {}", err);
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).expect("read after cap reply");
        prop_assert_eq!(n, 0, "server must close after the cap reply");
    }
}
