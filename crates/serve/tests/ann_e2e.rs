//! End-to-end tests for the ANN read path: a real server over a seeded
//! planted-partition graph, ANN queries over TCP, recall against the exact
//! scan, and the `seqge_ann_*` metric series that make the index's
//! incremental behavior observable.

use seqge_core::{OsElmConfig, TrainConfig};
use seqge_eval::EdgeOp;
use seqge_graph::generators::sbm::{PlantedPartition, SbmParams};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_cold, start, Client, ServeConfig, DEFAULT_PROBES};

const DIM: usize = 8;
const SEED: u64 = 11;
const K: usize = 10;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

/// Boots a server over a seeded SBM: clustered geometry is exactly what the
/// LSH index is supposed to exploit, so recall here is the regression floor
/// the ISSUE names, not a lucky draw.
fn sbm_server() -> seqge_serve::ServerHandle {
    let graph = PlantedPartition::new(SbmParams::new(180, 1200, 4))
        .expect("valid SBM params")
        .generate(SEED);
    let cfg = train_cfg();
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(DIM) };
    let (model, inc) = boot_cold(&graph, &cfg, ocfg, UpdatePolicy::every_edge(), SEED);
    start("127.0.0.1:0", graph, model, inc, ServeConfig::default()).expect("server starts")
}

/// `mode:"ann"` at the default probe count answers over TCP with recall@10
/// ≥ 0.9 against the exact scan on the same snapshot, and the query-side
/// `seqge_ann_*` series show up in the metrics scrape with the counts the
/// traffic implies.
#[test]
fn ann_mode_meets_recall_floor_and_exports_metrics() {
    let handle = sbm_server();
    let mut c = Client::connect(handle.addr()).expect("client connects");

    let queries: Vec<u32> = (0..180).step_by(6).collect();
    let mut recall_sum = 0.0f64;
    for &q in &queries {
        let exact = c.topk(q, K, EdgeOp::Cosine).unwrap();
        let ann = c.topk_ann(q, K, EdgeOp::Cosine, DEFAULT_PROBES).unwrap();
        assert!(ann.len() <= K);
        assert!(ann.iter().all(|&(n, _)| n != q), "query node excluded");
        assert!(ann.windows(2).all(|w| w[0].1 >= w[1].1), "sorted best-first");
        let hit = ann.iter().filter(|h| exact.iter().any(|e| e.0 == h.0)).count();
        recall_sum += hit as f64 / exact.len().clamp(1, K) as f64;
    }
    let recall = recall_sum / queries.len() as f64;
    assert!(recall >= 0.9, "recall@10 {recall:.3} below the 0.9 floor at default probes");

    // The wire response names the mode and whether the index answered.
    let raw = c
        .call_raw(&format!(
            r#"{{"cmd":"topk","node":0,"k":5,"mode":"ann","probes":{DEFAULT_PROBES}}}"#
        ))
        .unwrap();
    assert!(raw.contains(r#""mode":"ann""#), "{raw}");
    assert!(raw.contains(r#""fallback":"#), "{raw}");

    // Every ANN family is registered and the query-path counters moved.
    let text = c.metrics("prometheus").unwrap();
    for needle in [
        "seqge_ann_queries_total",
        "seqge_ann_fallbacks_total",
        "seqge_ann_candidates",
        "seqge_ann_sync_ns",
        "seqge_ann_rehashed_total",
        "seqge_ann_indexed_points 180",
        "seqge_ann_dirty_ppm",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    let queries_line = text
        .lines()
        .find(|l| l.starts_with("seqge_ann_queries_total"))
        .expect("ann query counter present");
    let served: u64 = queries_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(
        served >= queries.len() as u64,
        "expected >= {} ann queries counted, saw {served}",
        queries.len()
    );

    handle.shutdown().unwrap();
}

/// `mode:"exact"` on the wire is the default path spelled out: the raw
/// response line is byte-identical to the same query with no mode at all.
#[test]
fn explicit_exact_mode_is_byte_identical_to_default() {
    let handle = sbm_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    for node in [0u32, 7, 63, 179] {
        let plain = c.call_raw(&format!(r#"{{"cmd":"topk","node":{node},"k":5}}"#)).unwrap();
        let spelled = c
            .call_raw(&format!(r#"{{"cmd":"topk","node":{node},"k":5,"mode":"exact","probes":3}}"#))
            .unwrap();
        assert_eq!(plain, spelled, "explicit exact mode must not change the reply");
        assert!(plain.contains(r#""mode":"exact""#), "{plain}");
    }
    handle.shutdown().unwrap();
}

/// Republishing with <1% dirty vertices re-hashes only the dirty region —
/// asserted through the same `seqge_ann_*` series the trainer exports, not
/// through index internals: after a full build of `n` rows and a re-sync
/// with `d` dirtied rows, `seqge_ann_rehashed_total` reads exactly `n + d`
/// and `seqge_ann_dirty_ppm` reads `d * 1e6 / n`.
#[test]
fn republish_with_sparse_dirt_rehashes_only_the_dirty_region() {
    use seqge_ann::{AnnBuilder, AnnConfig};
    use seqge_linalg::Mat;
    use seqge_obs::Registry;
    use seqge_serve::ServeStats;

    let registry = Registry::new();
    let stats = ServeStats::new(&registry);
    let n = 1_000usize;

    let emb = Mat::from_fn(n, DIM, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
    let mut builder = AnnBuilder::new(AnnConfig::default());
    let (_, full) = builder.sync(&emb);
    stats.record_ann_sync(&full);
    assert_eq!((full.total, full.dirty, full.rehashed), (n, n, n), "first sync is a full build");

    // Dirty 7 rows — 0.7% of the vertex set — and republish.
    let mut emb2 = emb.clone();
    for r in [3usize, 150, 311, 500, 747, 900, 999] {
        emb2.row_mut(r)[0] += 1.0;
    }
    let (_, incr) = builder.sync(&emb2);
    stats.record_ann_sync(&incr);
    assert_eq!(incr.rehashed, 7, "only the dirty region is re-hashed");
    assert!(incr.rehashed * 100 < n, "dirty region stays under 1%");

    let text = seqge_obs::export::prometheus(&[&registry]);
    let series = |name: &str| -> i64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("missing `{name}` in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse::<f64>()
            .unwrap() as i64
    };
    assert_eq!(series("seqge_ann_rehashed_total"), (n + 7) as i64);
    assert_eq!(series("seqge_ann_indexed_points"), n as i64);
    assert_eq!(series("seqge_ann_dirty_ppm"), 7_000, "7/1000 dirty = 7000 ppm");

    // A no-op republish touches nothing.
    let (_, quiet) = builder.sync(&emb2);
    stats.record_ann_sync(&quiet);
    assert_eq!((quiet.dirty, quiet.rehashed), (0, 0));
    let text = seqge_obs::export::prometheus(&[&registry]);
    assert!(
        text.contains("seqge_ann_dirty_ppm 0"),
        "quiet republish must export zero dirty ppm:\n{text}"
    );
}
