//! Trace-propagation tests against a live server.
//!
//! The wire contract under test: a request carrying `"trace":{...}` must
//! produce server spans whose `trace`/`parent` are exactly the attached
//! context — never another connection's — and an unsampled context must
//! produce no spans at all. The write plane additionally closes a
//! `write.visible` span at publish, and the freshness plane stays readable
//! (`snapshot_staleness_ms` in `stats`, `seqge_freshness_*` in metrics).
//!
//! The span ring is process-global, so every assertion filters by the
//! trace ids this test minted; concurrent tests in this binary only ever
//! add unrelated spans.

use proptest::prelude::*;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_obs::trace::{fmt_id, next_id};
use seqge_obs::TraceCtx;
use seqge_sampling::UpdatePolicy;
use seqge_serve::protocol::attach_trace;
use seqge_serve::{boot_cold, start, ServeConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const DIM: usize = 4;
const SEED: u64 = 9;

/// One shared server for every case; tracing forced on, sampling left to
/// the per-request context (explicit wire contexts bypass 1-in-N).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        seqge_obs::set_timing_enabled(true);
        let graph = erdos_renyi(12, 0.3, 42);
        let mut cfg = seqge_core::TrainConfig::paper_defaults(DIM);
        cfg.walk.walk_length = 8;
        cfg.walk.walks_per_node = 1;
        let ocfg = seqge_core::OsElmConfig {
            model: cfg.model,
            ..seqge_core::OsElmConfig::paper_defaults(DIM)
        };
        let (model, inc) = boot_cold(&graph, &cfg, ocfg, UpdatePolicy::every_edge(), SEED);
        let handle = start("127.0.0.1:0", graph, model, inc, ServeConfig::default())
            .expect("trace server boots");
        let addr = handle.addr();
        std::mem::forget(handle);
        addr
    })
}

fn connect() -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Value {
    stream.write_all(line.as_bytes()).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("server replies");
    let v: Value = serde_json::from_str(reply.trim_end())
        .unwrap_or_else(|e| panic!("reply is not JSON ({e}): {reply}"));
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "request must succeed: {reply}");
    v
}

/// Fetches the whole span ring and keeps only spans whose `trace` is one
/// of `ours` (hex strings), returned as `(trace, parent, name)` triples.
fn our_spans(ours: &[String]) -> Vec<(String, String, String)> {
    let (mut stream, mut reader) = connect();
    let v = send(&mut stream, &mut reader, r#"{"cmd":"trace","after":0}"#);
    let spans = v.get("spans").and_then(Value::as_array).expect("spans array");
    spans
        .iter()
        .filter_map(|s| {
            let trace = s.get("trace")?.as_str()?.to_string();
            if !ours.contains(&trace) {
                return None;
            }
            let parent = s.get("parent").and_then(Value::as_str).unwrap_or("").to_string();
            let name = s.get("name")?.as_str()?.to_string();
            Some((trace, parent, name))
        })
        .collect()
}

/// The read-plane ops a generated schedule can pick from.
const OPS: &[&str] = &[
    r#"{"cmd":"ping"}"#,
    r#"{"cmd":"get_embedding","node":3}"#,
    r#"{"cmd":"topk","node":1,"k":3,"op":"dot"}"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary interleavings of sampled/unsampled traced requests across
    /// three connections: every recorded span parents to exactly the
    /// context its own request carried, and unsampled contexts leave no
    /// spans. Trace ids are minted fresh per request, so a parent from one
    /// connection showing up under another connection's trace id would be
    /// a cross-connection context leak.
    #[test]
    fn interleaved_traced_requests_never_mix_contexts(
        schedule in proptest::collection::vec((0usize..3, any::<bool>(), 0usize..3), 1..20),
    ) {
        let mut conns: Vec<_> = (0..3).map(|_| connect()).collect();
        // (trace hex, parent hex, sampled) per request sent.
        let mut sent: Vec<(String, String, bool)> = Vec::new();
        for &(conn, sampled, op) in &schedule {
            let ctx = TraceCtx { trace_id: next_id(), parent_span: next_id(), sampled };
            let line = attach_trace(OPS[op], &ctx);
            let (stream, reader) = &mut conns[conn];
            send(stream, reader, &line);
            sent.push((fmt_id(ctx.trace_id), fmt_id(ctx.parent_span), sampled));
        }

        let ours: Vec<String> = sent.iter().map(|(t, _, _)| t.clone()).collect();
        let spans = our_spans(&ours);
        for (trace, parent, sampled) in &sent {
            let mine: Vec<_> = spans.iter().filter(|(t, _, _)| t == trace).collect();
            if *sampled {
                prop_assert!(
                    !mine.is_empty(),
                    "sampled request {trace} left no span in the ring"
                );
                for (_, got_parent, name) in &mine {
                    prop_assert_eq!(
                        got_parent, parent,
                        "span {} of trace {} parents to a foreign context", name, trace
                    );
                }
            } else {
                prop_assert!(
                    mine.is_empty(),
                    "unsampled request {trace} must leave no spans, got {mine:?}"
                );
            }
        }
    }
}

/// A traced write closes a `write.visible` span at publish carrying the
/// writer's trace id, and the always-on freshness plane shows up in both
/// `stats` and the Prometheus export.
#[test]
fn traced_write_closes_visibility_span_and_freshness_is_readable() {
    let (mut stream, mut reader) = connect();
    let ctx = TraceCtx { trace_id: next_id(), parent_span: next_id(), sampled: true };
    let line = attach_trace(r#"{"cmd":"add_edge","u":2,"v":9}"#, &ctx);
    send(&mut stream, &mut reader, &line);
    // The flush barrier returns only after the write's snapshot published,
    // which is when close_freshness records the span.
    send(&mut stream, &mut reader, r#"{"cmd":"flush"}"#);

    let trace = fmt_id(ctx.trace_id);
    let spans = our_spans(std::slice::from_ref(&trace));
    assert!(
        spans.iter().any(|(_, _, name)| name == "write.visible"),
        "publish must close a write.visible span for trace {trace}, got {spans:?}"
    );
    assert!(
        spans.iter().any(|(_, _, name)| name == "serve.add_edge"),
        "the write op itself must record a span, got {spans:?}"
    );

    let stats = send(&mut stream, &mut reader, r#"{"cmd":"stats"}"#);
    assert!(
        stats.get("snapshot_staleness_ms").and_then(Value::as_u64).is_some(),
        "stats must always report snapshot_staleness_ms: {stats:?}"
    );

    let metrics = send(&mut stream, &mut reader, r#"{"cmd":"metrics","format":"prometheus"}"#);
    let body = metrics.get("body").and_then(Value::as_str).expect("prometheus body");
    assert!(body.contains("seqge_freshness_events_total"), "freshness counter missing from export");
    assert!(body.contains("seqge_freshness_ns"), "freshness histogram missing from export");
}

/// A malformed trace object must never fail the request — it is treated
/// as untraced (no span with a parseable foreign id, and the op succeeds).
#[test]
fn malformed_trace_context_is_ignored_not_fatal() {
    let (mut stream, mut reader) = connect();
    for line in [
        r#"{"cmd":"ping","trace":{"id":"xyz","span":"0"}}"#,
        r#"{"cmd":"ping","trace":{"id":42}}"#,
        r#"{"cmd":"ping","trace":"not-an-object"}"#,
        r#"{"cmd":"ping","trace":null}"#,
    ] {
        send(&mut stream, &mut reader, line);
    }
}
