//! Bit-identity property tests for the exact topk path.
//!
//! The `select_nth_unstable_by` rewrite of `topk_filtered` (and the exact
//! re-rank inside `topk_ann`) must be *bit-identical* to the obvious
//! reference: score every candidate, full-sort under the protocol total
//! order (score descending, node id ascending), take `k`. These properties
//! drive random matrices built from a tiny value alphabet so equal scores
//! — the tie-break case — occur constantly, and compare `Vec<(u32, f64)>`
//! with `prop_assert_eq!` (exact f64 equality, not approximate).

use proptest::prelude::*;
use seqge_ann::{AnnBuilder, AnnConfig};
use seqge_eval::EdgeOp;
use seqge_linalg::Mat;
use seqge_serve::EmbeddingSnapshot;

const MAX_ROWS: usize = 40;
const MAX_COLS: usize = 6;

/// The reference ranking nobody can get wrong: score all candidates, full
/// sort with the protocol total order, truncate to `k`.
fn reference_topk(
    emb: &Mat<f32>,
    node: u32,
    k: usize,
    op: EdgeOp,
    filter: Option<(u32, u32)>,
) -> Vec<(u32, f64)> {
    let mut scored: Vec<(u32, f64)> = (0..emb.rows() as u32)
        .filter(|&v| v != node && filter.is_none_or(|(m, r)| v % m == r))
        .map(|v| (v, op.score(emb, node, v)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

fn snap(emb: Mat<f32>) -> EmbeddingSnapshot {
    EmbeddingSnapshot {
        version: 1,
        emb,
        num_edges: 0,
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
        ann: None,
    }
}

/// Builds a `rows x cols` matrix from a flat value pool (the pool is always
/// generated at max size; the prefix is used). With a 4-value alphabet,
/// duplicated rows — hence exact score ties — are the common case, not a
/// corner case.
fn matrix(rows: usize, cols: usize, vals: &[f32]) -> Mat<f32> {
    Mat::from_vec(rows, cols, vals[..rows * cols].to_vec())
}

/// One cell value from the tie-heavy alphabet.
fn cell() -> impl Strategy<Value = f32> {
    prop_oneof![Just(-1.0f32), Just(0.0f32), Just(0.5f32), Just(1.0f32)]
}

fn cells() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(cell(), MAX_ROWS * MAX_COLS)
}

fn any_op() -> impl Strategy<Value = EdgeOp> {
    prop_oneof![Just(EdgeOp::Dot), Just(EdgeOp::Cosine), Just(EdgeOp::NegL2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `mode:"exact"` (= `topk_filtered`) is bit-identical to the full-sort
    /// reference, ties included: same ids, same f64 scores, same order.
    #[test]
    fn exact_topk_is_bit_identical_to_full_sort(
        rows in 2usize..MAX_ROWS,
        cols in 1usize..MAX_COLS,
        vals in cells(),
        node_pick in 0usize..MAX_ROWS,
        k in 0usize..12,
        op in any_op(),
    ) {
        let emb = matrix(rows, cols, &vals);
        let node = (node_pick % rows) as u32;
        let want = reference_topk(&emb, node, k, op, None);
        let got = snap(emb).topk_filtered(node, k, op, None).expect("node in range");
        prop_assert_eq!(got, want);
    }

    /// The residue-class filter (the cluster's shard restriction) preserves
    /// bit-identity too.
    #[test]
    fn exact_topk_with_residue_filter_is_bit_identical(
        rows in 2usize..MAX_ROWS,
        cols in 1usize..MAX_COLS,
        vals in cells(),
        node_pick in 0usize..MAX_ROWS,
        k in 0usize..12,
        op in any_op(),
        m in 1u32..5,
        r_pick in 0u32..5,
    ) {
        let emb = matrix(rows, cols, &vals);
        let node = (node_pick % rows) as u32;
        let filter = Some((m, r_pick % m));
        let want = reference_topk(&emb, node, k, op, filter);
        let got = snap(emb).topk_filtered(node, k, op, filter).expect("node in range");
        prop_assert_eq!(got, want);
    }

    /// Ties break by ascending node id: on an all-identical-rows matrix the
    /// topk is exactly the first `k` non-query ids, scores all equal.
    #[test]
    fn all_tied_rows_rank_by_ascending_id(
        rows in 3usize..30,
        cols in 1usize..5,
        node_pick in 0usize..30,
        k in 1usize..8,
        op in any_op(),
    ) {
        let node = (node_pick % rows) as u32;
        let s = snap(Mat::from_fn(rows, cols, |_, c| 1.0 + c as f32));
        let got = s.topk_filtered(node, k, op, None).expect("node in range");
        let want_ids: Vec<u32> =
            (0..rows as u32).filter(|&v| v != node).take(k).collect();
        prop_assert_eq!(got.iter().map(|h| h.0).collect::<Vec<_>>(), want_ids);
        prop_assert!(got.windows(2).all(|w| w[0].1 == w[1].1), "scores tie");
    }

    /// The ANN path without an index is the exact scan: bit-identical to
    /// the reference and flagged as a fallback.
    #[test]
    fn ann_mode_without_index_is_bit_identical_fallback(
        rows in 2usize..MAX_ROWS,
        cols in 1usize..MAX_COLS,
        vals in cells(),
        node_pick in 0usize..MAX_ROWS,
        k in 0usize..12,
        op in any_op(),
        probes in 0usize..16,
    ) {
        let emb = matrix(rows, cols, &vals);
        let node = (node_pick % rows) as u32;
        let want = reference_topk(&emb, node, k, op, None);
        let got = snap(emb).topk_ann(node, k, op, None, probes).expect("node in range");
        prop_assert_eq!(got.fallback, k > 0);
        prop_assert_eq!(got.hits, want);
    }

    /// With an index over the same matrix, the ANN hits are an exactly
    /// re-ranked *subset*: every hit carries the exact score, the list obeys
    /// the protocol total order, and a fallback answer is bit-identical to
    /// the reference — approximation may drop candidates but can never
    /// perturb a score or a tie-break.
    #[test]
    fn ann_mode_with_index_reranks_exactly(
        rows in 2usize..MAX_ROWS,
        cols in 1usize..MAX_COLS,
        vals in cells(),
        node_pick in 0usize..MAX_ROWS,
        k in 1usize..8,
        op in any_op(),
        probes in 0usize..16,
    ) {
        let emb = matrix(rows, cols, &vals);
        let node = (node_pick % rows) as u32;
        let (index, _) = AnnBuilder::new(AnnConfig::default()).sync(&emb);
        let s = EmbeddingSnapshot { ann: Some(index), ..snap(emb) };
        let got = s.topk_ann(node, k, op, None, probes).expect("node in range");
        for &(v, score) in &got.hits {
            prop_assert_ne!(v, node);
            prop_assert_eq!(score, op.score(&s.emb, node, v));
        }
        prop_assert!(
            got.hits.windows(2).all(|w| {
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)
            }),
            "protocol total order (score desc, id asc)"
        );
        if got.fallback {
            prop_assert_eq!(got.hits, reference_topk(&s.emb, node, k, op, None));
        } else {
            prop_assert!(got.candidates >= k);
            prop_assert_eq!(got.hits.len(), k);
        }
    }
}
