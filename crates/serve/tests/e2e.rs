//! End-to-end tests: a real server on a loopback socket, a real client.
//!
//! The acceptance loop — boot from a partial graph, stream the held-out
//! edges in over the write plane while querying the read plane, watch
//! link-prediction scores improve, snapshot, kill, restore bit-identically.
//!
//! The whole suite is backend-generic: `SEQGE_BACKEND=fpga-sim` runs every
//! test against the fixed-point accelerator backend (the CI backend matrix
//! does exactly that); default is float.

use seqge_backend::{BackendKind, BackendSpec};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_eval::EdgeOp;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::spanning_forest;
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_restore_spec, start_backend, Client, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const DIM: usize = 8;
const SEED: u64 = 11;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

fn ocfg() -> OsElmConfig {
    OsElmConfig { model: train_cfg().model, ..OsElmConfig::paper_defaults(DIM) }
}

fn backend_kind() -> BackendKind {
    match std::env::var("SEQGE_BACKEND") {
        Ok(s) => BackendKind::parse(&s).expect("SEQGE_BACKEND"),
        Err(_) => BackendKind::Float,
    }
}

fn spec() -> BackendSpec {
    BackendSpec::new(backend_kind(), train_cfg(), ocfg(), UpdatePolicy::every_edge(), SEED)
}

/// Boots a server over the spanning forest of a random graph; returns the
/// handle plus the removed (held-out) edges.
fn forest_server(config: ServeConfig) -> (seqge_serve::ServerHandle, Vec<(u32, u32)>) {
    let full = erdos_renyi(40, 0.18, 7);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let mut backend = spec().cold(initial.num_nodes());
    backend.bootstrap(&initial);
    let handle = start_backend("127.0.0.1:0", initial, backend, config).expect("server starts");
    (handle, split.removed_edges)
}

#[test]
fn serves_queries_while_ingesting_and_scores_improve() {
    let (handle, removed) = forest_server(ServeConfig::default());
    assert!(removed.len() >= 10, "test graph must hold out a real stream");
    let mut c = Client::connect(handle.addr()).expect("client connects");
    c.ping().unwrap();

    // Cold read plane.
    let stats = c.stats().unwrap();
    assert_eq!(stats.get("nodes").and_then(|v| v.as_u64()), Some(40));
    let emb = c.get_embedding(0).unwrap();
    assert_eq!(emb.len(), DIM);
    let cold_mean: f64 =
        removed.iter().map(|&(u, v)| c.score_link(u, v, EdgeOp::Cosine).unwrap()).sum::<f64>()
            / removed.len() as f64;

    // Stream every held-out edge in while interleaving reads (the reads
    // must never error or observe a torn snapshot, whatever the trainer is
    // doing at that moment).
    for (i, &(u, v)) in removed.iter().enumerate() {
        c.add_edge(u, v).unwrap();
        if i % 5 == 0 {
            let top = c.topk(u, 3, EdgeOp::Cosine).unwrap();
            assert!(top.len() <= 3);
            assert!(top.iter().all(|&(n, _)| n != u), "query node excluded");
            let row = c.get_embedding(v).unwrap();
            assert_eq!(row.len(), DIM);
            assert!(row.iter().all(|x| x.is_finite()));
        }
    }
    let version = c.flush().unwrap();
    assert!(version > 0, "training must have published new snapshots");

    // Everything queued was applied (nothing rejected, nothing pending).
    let stats = c.stats().unwrap();
    assert_eq!(stats.get("edges_inserted").and_then(|v| v.as_u64()), Some(removed.len() as u64));
    assert_eq!(stats.get("pending").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(stats.get("rejected").and_then(|v| v.as_u64()), Some(0));

    // The model has now trained on the held-out edges: their link scores
    // must improve over the cold forest-only model on average.
    let warm_mean: f64 =
        removed.iter().map(|&(u, v)| c.score_link(u, v, EdgeOp::Cosine).unwrap()).sum::<f64>()
            / removed.len() as f64;
    assert!(
        warm_mean > cold_mean,
        "ingesting edges must raise their mean link score (cold {cold_mean:.4}, warm {warm_mean:.4})"
    );

    // topk of an endpoint should now rank its freshly trained neighbors
    // with finite, ordered scores.
    let (u, _) = removed[0];
    let top = c.topk(u, 5, EdgeOp::Cosine).unwrap();
    assert!(!top.is_empty());
    assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "topk is sorted best-first");

    handle.shutdown().unwrap();
}

#[test]
fn protocol_errors_are_clean_and_connection_survives() {
    let (handle, _) = forest_server(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();

    // Malformed JSON, unknown command, missing fields, bad values: each
    // gets an {"ok":false} line and the connection stays usable.
    for bad in [
        "{this is not json",
        r#"{"cmd":"warp_drive"}"#,
        r#"{"cmd":"add_edge","u":1}"#,
        r#"{"cmd":"topk","node":1,"op":"manhattan"}"#,
        r#"[1,2,3]"#,
        r#"{"cmd":"get_embedding","node":4999}"#,
        r#"{"cmd":"add_edge","u":0,"v":0}"#,
        r#"{"cmd":"add_edge","u":0,"v":4999}"#,
        r#"{"cmd":"snapshot"}"#, // no snapshot dir configured
    ] {
        let resp = c.call_raw(bad).unwrap();
        assert!(resp.contains("\"ok\":false") || resp.contains("\"ok\": false"), "{bad} → {resp}");
        c.ping().expect("connection survives a protocol error");
    }
    handle.shutdown().unwrap();
}

#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    let (handle, _) = forest_server(ServeConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let big = vec![b'x'; seqge_serve::MAX_LINE_BYTES + 4096];
    stream.write_all(&big).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("exceeds"), "oversized line must be called out: {line}");
    // Server closes: next read sees EOF.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection must be closed");
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_readers_and_writer_make_progress() {
    let (handle, removed) = forest_server(ServeConfig::default());
    let addr = handle.addr();
    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        for &(u, v) in &removed {
            c.add_edge(u, v).unwrap();
        }
        c.flush().unwrap()
    });
    let readers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for q in 0..60u32 {
                    let node = (q * 7 + i) % 40;
                    let emb = c.get_embedding(node).unwrap();
                    assert!(emb.iter().all(|x| x.is_finite()));
                    let _ = c.score_link(node, (node + 1) % 40, EdgeOp::Dot).unwrap();
                }
            })
        })
        .collect();
    let version = writer.join().expect("writer thread");
    assert!(version > 0);
    for r in readers {
        r.join().expect("reader thread");
    }
    handle.shutdown().unwrap();
}

#[test]
fn snapshot_restore_roundtrip_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("seqge_serve_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig::default().with_snapshot_dir(&dir).unwrap();
    let (handle, removed) = forest_server(config);
    let mut c = Client::connect(handle.addr()).unwrap();

    // Train on half the stream, snapshot, record state.
    let half = removed.len() / 2;
    for &(u, v) in &removed[..half] {
        c.add_edge(u, v).unwrap();
    }
    c.flush().unwrap();
    c.snapshot().unwrap();
    let frozen: Vec<Vec<f32>> = (0..40).map(|n| c.get_embedding(n).unwrap()).collect();
    let frozen_edges = c.stats().unwrap().get("edges").and_then(|v| v.as_u64()).unwrap();

    // "Kill" the server (graceful here; the final snapshot also runs, but
    // we already snapshotted explicitly) and boot a fresh one from disk.
    handle.shutdown().unwrap();
    let (graph, backend) = boot_restore_spec(&dir, &spec()).expect("restore boots");
    assert_eq!(graph.num_edges() as u64, frozen_edges);
    let handle2 = start_backend(
        "127.0.0.1:0",
        graph,
        backend,
        ServeConfig::default().with_snapshot_dir(&dir).unwrap(),
    )
    .unwrap();
    let mut c2 = Client::connect(handle2.addr()).unwrap();

    // Bit-identical embeddings (f32-exact through the JSON wire).
    for (n, frozen_row) in frozen.iter().enumerate() {
        let row = c2.get_embedding(n as u32).unwrap();
        assert_eq!(&row, frozen_row, "row {n} differs after restore");
    }

    // The restored server keeps ingesting the rest of the stream.
    for &(u, v) in &removed[half..] {
        c2.add_edge(u, v).unwrap();
    }
    c2.flush().unwrap();
    let stats = c2.stats().unwrap();
    assert_eq!(stats.get("rejected").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(
        stats.get("edges_inserted").and_then(|v| v.as_u64()),
        Some((removed.len() - half) as u64)
    );

    // The in-protocol restore command rolls back to the on-disk state.
    let restored_version = c2.restore().unwrap();
    assert!(restored_version > 0);
    for (n, frozen_row) in frozen.iter().enumerate() {
        let row = c2.get_embedding(n as u32).unwrap();
        assert_eq!(&row, frozen_row, "row {n} differs after in-protocol restore");
    }

    handle2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_op_exposes_request_latency_after_traffic() {
    let (handle, removed) = forest_server(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();

    // Generate traffic on both planes so every core series has samples.
    for &(u, v) in removed.iter().take(8) {
        c.add_edge(u, v).unwrap();
        let _ = c.get_embedding(u).unwrap();
    }
    c.flush().unwrap();
    let _ = c.stats().unwrap();

    let text = c.metrics("prometheus").unwrap();
    // Request-latency summary with quantile labels, per op.
    assert!(
        text.contains("# TYPE seqge_serve_request_latency_ns summary"),
        "missing latency family:
{text}"
    );
    for needle in [
        "seqge_serve_request_latency_ns{op=\"get_embedding\",quantile=\"0.5\"}",
        "seqge_serve_request_latency_ns{op=\"get_embedding\",quantile=\"0.99\"}",
        "seqge_serve_requests_total{op=\"add_edge\"} 8",
        "seqge_serve_events_enqueued_total 8",
        "seqge_serve_events_applied_total 8",
        "seqge_serve_trainer_backlog 0",
        "seqge_serve_ingest_batch_size_count",
        "seqge_serve_walks_trained_total",
    ] {
        assert!(
            text.contains(needle),
            "missing `{needle}` in:
{text}"
        );
    }
    // Every non-comment line must parse as `id value`.
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparseable exposition line: {line}");
    }
    // Latency histograms actually saw the traffic.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("seqge_serve_request_latency_ns_count{op=\"get_embedding\"}"))
        .expect("latency count series present");
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 8, "expected >=8 get_embedding samples, saw {count}");

    // JSON rendering of the same registry.
    let js = c.metrics("json").unwrap();
    assert!(js.starts_with("{\"counters\":["), "{js}");
    assert!(js.contains("seqge_serve_request_latency_ns"));
    assert!(js.contains("\"p99\":"));

    // Unknown format is a clean protocol error.
    assert!(c.call(r#"{"cmd":"metrics","format":"xml"}"#).is_err());

    handle.shutdown().unwrap();
}

#[test]
fn stats_reports_uptime_and_versions() {
    let (handle, removed) = forest_server(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    for &(u, v) in removed.iter().take(3) {
        c.add_edge(u, v).unwrap();
    }
    c.flush().unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.get("uptime_ms").and_then(|v| v.as_u64()).is_some(), "{stats:?}");
    let snap_ver = stats.get("snapshot_version").and_then(|v| v.as_u64()).unwrap();
    assert!(snap_ver > 0, "flush must have published: {stats:?}");
    assert_eq!(stats.get("enqueued").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(stats.get("snapshots_written").and_then(|v| v.as_u64()), Some(0));
    // The reply names the training engine actually running (+ key params).
    let backend = stats.get("backend").expect("stats carries the backend descriptor");
    let rendered = format!("{backend:?}");
    assert!(
        rendered.contains(backend_kind().as_str()),
        "backend descriptor must name `{}`: {rendered}",
        backend_kind()
    );
    assert!(rendered.contains("dim"), "descriptor carries key params: {rendered}");
    handle.shutdown().unwrap();
}

#[test]
fn reads_shed_with_overloaded_while_writes_keep_flowing() {
    // trainer_stall=1.0 makes every apply sleep, so a tiny write burst
    // builds real backlog; max_backlog 0 sheds reads at the first pending
    // event. Writes are never shed — that's the plane we protect.
    let fault = seqge_serve::FaultInjector::parse("trainer_stall=1.0", 0)
        .unwrap()
        .with_stall(std::time::Duration::from_millis(30));
    let config =
        ServeConfig { max_backlog: 0, fault: std::sync::Arc::new(fault), ..ServeConfig::default() };
    let (handle, removed) = forest_server(config);
    let mut c = Client::connect(handle.addr()).unwrap();
    for &(u, v) in removed.iter().take(8) {
        c.add_edge(u, v).expect("writes are never shed");
    }
    let err = c.get_embedding(0).expect_err("read plane must shed under backlog");
    assert!(err.to_string().contains("overloaded"), "unexpected shed error: {err}");

    // flush is the barrier that drains the backlog; afterwards reads serve
    // again and the shed is visible in stats.
    c.flush().unwrap();
    let emb = c.get_embedding(0).expect("reads recover once the backlog drains");
    assert_eq!(emb.len(), DIM);
    let stats = c.stats().unwrap();
    assert!(
        stats.get("overloaded").and_then(|v| v.as_u64()).unwrap() >= 1,
        "shed not counted: {stats:?}"
    );
    handle.shutdown().unwrap();
}

#[test]
fn retried_writes_dedup_by_client_sequence() {
    let (handle, removed) = forest_server(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    let (u, v) = removed[0];
    let (u2, v2) = removed[1];

    let first = c
        .call_raw(&format!(r#"{{"cmd":"add_edge","u":{u},"v":{v},"client":"t1","seq":1}}"#))
        .unwrap();
    assert!(first.contains("\"queued\":true"), "{first}");
    assert!(!first.contains("deduped"), "fresh write must not be deduped: {first}");

    // The retry of an acknowledged write: acked again, applied never.
    let retry = c
        .call_raw(&format!(r#"{{"cmd":"add_edge","u":{u},"v":{v},"client":"t1","seq":1}}"#))
        .unwrap();
    assert!(retry.contains("\"deduped\":true"), "{retry}");

    // A later sequence number is new work; replaying below the high-water
    // mark dedups even for a different edge (the mark is per client).
    let second = c
        .call_raw(&format!(r#"{{"cmd":"add_edge","u":{u2},"v":{v2},"client":"t1","seq":2}}"#))
        .unwrap();
    assert!(second.contains("\"queued\":true") && !second.contains("deduped"), "{second}");
    let stale = c
        .call_raw(&format!(r#"{{"cmd":"add_edge","u":{u2},"v":{v2},"client":"t1","seq":2}}"#))
        .unwrap();
    assert!(stale.contains("\"deduped\":true"), "{stale}");

    // A different client id is a different stream: same seq, fresh write.
    let other = c
        .call_raw(&format!(
            r#"{{"cmd":"add_edge","u":{},"v":{},"client":"t2","seq":1}}"#,
            removed[2].0, removed[2].1
        ))
        .unwrap();
    assert!(other.contains("\"queued\":true") && !other.contains("deduped"), "{other}");

    c.flush().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.get("enqueued").and_then(|s| s.as_u64()), Some(3), "{stats:?}");
    assert_eq!(stats.get("deduped").and_then(|s| s.as_u64()), Some(2), "{stats:?}");
    handle.shutdown().unwrap();
}

#[test]
fn wal_mode_survives_graceful_shutdown_bit_identically_and_blocks_restore() {
    use seqge_serve::wal::{FsyncPolicy, WalConfig};
    let dir = std::env::temp_dir().join(format!("seqge_serve_wal_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wcfg = WalConfig { dir: dir.clone(), fsync: FsyncPolicy::Batch };

    let full = erdos_renyi(40, 0.18, 7);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let removed = split.removed_edges;
    let boot =
        seqge_serve::boot_wal(&wcfg, Some(initial), &spec(), 0).expect("cold init commits a store");
    assert_eq!(boot.report.gen, 0);
    let config = ServeConfig { wal: Some(std::sync::Arc::new(boot.wal)), ..ServeConfig::default() };
    let handle = start_backend("127.0.0.1:0", boot.graph, boot.backend, config).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // WAL-mode acks carry the assigned log sequence number.
    let (u, v) = removed[0];
    let ack = c
        .call_raw(&format!(r#"{{"cmd":"add_edge","u":{u},"v":{v},"client":"w","seq":1}}"#))
        .unwrap();
    assert!(ack.contains("\"seq\":1"), "WAL ack must carry the log seq: {ack}");
    let half = removed.len() / 2;
    for &(u, v) in &removed[1..half] {
        c.add_edge(u, v).unwrap();
    }
    c.flush().unwrap();

    // The on-disk generations are authoritative; in-protocol restore would
    // silently fork them, so it is refused.
    let resp = c.call_raw(r#"{"cmd":"restore"}"#).unwrap();
    assert!(
        resp.contains("\"ok\":false") && resp.contains("WAL mode"),
        "restore must be refused in WAL mode: {resp}"
    );
    let stats = c.stats().unwrap();
    assert_eq!(stats.get("wal"), Some(&serde::value::Value::Bool(true)), "{stats:?}");
    assert_eq!(stats.get("wal_fsync").and_then(|s| s.as_str()), Some("batch"), "{stats:?}");
    let frozen: Vec<Vec<f32>> = (0..40).map(|n| c.get_embedding(n).unwrap()).collect();

    // Graceful shutdown commits a snapshot generation and rotates the log,
    // so the reboot replays nothing — and matches bit for bit.
    handle.shutdown().unwrap();
    let boot2 = seqge_serve::boot_wal(&wcfg, None, &spec(), 0).expect("store recovers");
    assert!(boot2.report.gen >= 1, "shutdown must commit a generation: {:?}", boot2.report);
    assert_eq!(boot2.report.replayed, 0, "rotation left nothing to replay: {:?}", boot2.report);
    let config2 =
        ServeConfig { wal: Some(std::sync::Arc::new(boot2.wal)), ..ServeConfig::default() };
    let handle2 = start_backend("127.0.0.1:0", boot2.graph, boot2.backend, config2).unwrap();
    let mut c2 = Client::connect(handle2.addr()).unwrap();
    for (n, frozen_row) in frozen.iter().enumerate() {
        let row = c2.get_embedding(n as u32).unwrap();
        assert_eq!(&row, frozen_row, "row {n} differs after WAL reboot");
    }

    // The rebooted server keeps ingesting.
    for &(u, v) in &removed[half..] {
        c2.add_edge(u, v).unwrap();
    }
    c2.flush().unwrap();
    let stats = c2.stats().unwrap();
    assert_eq!(stats.get("rejected").and_then(|s| s.as_u64()), Some(0), "{stats:?}");
    handle2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_command_drains_and_stops_the_server() {
    let (handle, removed) = forest_server(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    for &(u, v) in &removed {
        c.add_edge(u, v).unwrap();
    }
    c.shutdown_server().unwrap();
    // wait() returns once the stop flag (set by the command) is honored;
    // the trainer drains queued events before exiting.
    let stats = handle.stats();
    handle.wait().unwrap();
    assert_eq!(
        stats.applied.get(),
        removed.len() as u64,
        "queued events must be drained during graceful shutdown"
    );
}
