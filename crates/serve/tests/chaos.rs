//! Chaos suite: kill -9 a real WAL-backed server under fault injection and
//! prove every *acknowledged* write survives, bit-identically.
//!
//! The server under test is the `chaosd` binary (in-process threads cannot
//! be SIGKILLed selectively), booted from a store this test commits with
//! `Wal::init`. The scenario per seed:
//!
//! 1. stream edges at daemon A, which runs with torn writes, append
//!    errors, dropped/stalled connections, and trainer panics armed;
//!    record which writes were acknowledged;
//! 2. SIGKILL A mid-stream (or as soon as an injected trainer panic makes
//!    it unresponsive);
//! 3. vandalize the log tail by hand — a duplicate-sequence record plus a
//!    torn partial record — so recovery must exercise both skip paths;
//! 4. recover the same bytes twice: in-process (`Wal::recover`, the
//!    reference) and as daemon B; they must agree bit for bit, and every
//!    acknowledged add must be present in the recovered graph;
//! 5. keep streaming the rest of the edges at B (connection faults still
//!    armed, so the client's retry + dedup machinery runs hot) while
//!    mirroring each event into the reference trainer, then compare all
//!    embeddings bit for bit again.
//!
//! Seeds come from `SEQGE_FAULT_SEED` (comma-separated; CI fans a matrix
//! of single seeds, the local default covers two schedules). Every fault
//! decision is a pure hash of `(seed, point, visit)`, so a failing seed
//! fails the same way every run.

use seqge_backend::{BackendKind, BackendSpec, TrainBackend};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::{spanning_forest, EdgeEvent};
use seqge_sampling::UpdatePolicy;
use seqge_serve::wal::{self, FsyncPolicy, Wal, WalConfig};
use seqge_serve::{ready, Client, ClientConfig};
use std::io::Seek;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const DIM: usize = 8;
const SEED: u64 = 11;

/// Must mirror `chaosd::train_cfg` exactly — the reference replay and the
/// daemon must agree on every walk parameter.
fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

fn ocfg() -> OsElmConfig {
    OsElmConfig { model: train_cfg().model, ..OsElmConfig::paper_defaults(DIM) }
}

/// The engine under chaos: `SEQGE_BACKEND=fpga-sim` runs the whole kill -9 /
/// bit-identical-recovery suite against the fixed-point backend (the CI
/// backend matrix does exactly that); default is float.
fn backend_kind() -> BackendKind {
    match std::env::var("SEQGE_BACKEND") {
        Ok(s) => BackendKind::parse(&s).expect("SEQGE_BACKEND"),
        Err(_) => BackendKind::Float,
    }
}

fn spec() -> BackendSpec {
    BackendSpec::new(backend_kind(), train_cfg(), ocfg(), UpdatePolicy::every_edge(), SEED)
}

/// Fault schedules under test (chaos seeds), from `SEQGE_FAULT_SEED`.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("SEQGE_FAULT_SEED") {
        Ok(s) => s
            .split(',')
            .map(|p| p.trim().parse().expect("SEQGE_FAULT_SEED: comma-separated u64s"))
            .collect(),
        Err(_) => vec![1, 2],
    }
}

/// A running chaosd with kill-on-drop (so a failing assert doesn't leak
/// daemons).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(dir: &Path, faults: &str, seed: u64) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_chaosd"))
            .args(["--dir", dir.to_str().unwrap(), "--addr", "127.0.0.1:0"])
            .args(["--backend", backend_kind().as_str()])
            .env("SEQGE_FAULT", faults)
            .env("SEQGE_FAULT_SEED", seed.to_string())
            .env("SEQGE_FAULT_STALL_MS", "1200")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("chaosd spawns");
        let addr = ready::await_ready(&mut child).expect("chaosd announces readiness").to_string();
        Daemon { child, addr }
    }

    /// SIGKILL — no drain, no final snapshot, exactly the crash we claim
    /// to survive.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill9();
    }
}

fn client(addr: &str, id: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            timeout: Duration::from_millis(800),
            retries: 8,
            client_id: id.to_string(),
            ..ClientConfig::default()
        },
    )
    .expect("client connects")
}

/// Commits a fresh WAL store holding the spanning forest of the test
/// graph; returns the held-out edges to stream.
fn commit_store(dir: &Path) -> Vec<(u32, u32)> {
    let full = erdos_renyi(40, 0.18, 7);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let mut backend = spec().cold(initial.num_nodes());
    backend.bootstrap(&initial);
    let wcfg = WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Batch };
    Wal::init(&wcfg, &*backend, &initial).expect("store init");
    split.removed_edges
}

/// In-process recovery of a store directory — the reference truth a
/// recovered daemon must match bit for bit.
fn reference_recover(dir: &Path) -> wal::WalBoot {
    let wcfg = WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Never };
    Wal::recover(&wcfg, &spec(), 0).expect("recovery reads the store").expect("store is committed")
}

/// Appends a duplicate of the segment's last intact record plus a torn
/// partial record, so recovery must take both skip paths. Returns how many
/// intact records precede the vandalism.
fn vandalize_segment(dir: &Path) -> usize {
    let seg = current_segment(dir);
    let scan = wal::read_segment(&seg).expect("segment scans");
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    // Drop any real torn tail first so our fabricated records are reachable.
    f.set_len(scan.valid_bytes.max(wal::MAGIC.len() as u64)).unwrap();
    f.seek(std::io::SeekFrom::End(0)).unwrap();
    if let Some(last) = scan.records.last() {
        f.write_all(&wal::encode_record(last.seq, last.event)).unwrap();
    }
    // A plausible header promising 10 payload bytes, then death after 2.
    f.write_all(&[10, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 0xDE, 0xAD]).unwrap();
    f.sync_all().unwrap();
    scan.records.len()
}

fn current_segment(dir: &Path) -> PathBuf {
    let meta = wal::read_meta(dir).expect("meta reads").expect("store committed");
    dir.join(format!("wal.{}.log", meta.segment))
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn embedding_rows(backend: &mut dyn TrainBackend) -> Vec<Vec<f32>> {
    let emb = backend.publish_view();
    (0..emb.rows()).map(|r| emb.as_slice()[r * emb.cols()..(r + 1) * emb.cols()].to_vec()).collect()
}

fn assert_rows_match(c: &mut Client, reference: &[Vec<f32>], when: &str) {
    for (n, want) in reference.iter().enumerate() {
        let got = c.get_embedding(n as u32).unwrap();
        assert_eq!(&got, want, "node {n} embedding differs from reference {when}");
    }
}

#[test]
fn acknowledged_writes_survive_kill9_and_recovery_is_bit_identical() {
    for seed in chaos_seeds() {
        run_chaos_scenario(seed);
    }
}

fn run_chaos_scenario(seed: u64) {
    let base = std::env::temp_dir().join(format!("seqge_chaos_{}_{}", std::process::id(), seed));
    let _ = std::fs::remove_dir_all(&base);
    let store = base.join("store");
    std::fs::create_dir_all(&store).unwrap();
    let edges = commit_store(&store);
    assert!(edges.len() >= 20, "need a real stream, got {} edges", edges.len());

    // Phase 1: hostile daemon A. Everything armed, including panics.
    let mut a = Daemon::spawn(
        &store,
        "conn_drop=0.06,conn_stall=0.02,wal_short_write=0.05,wal_append_error=0.03,trainer_panic=0.005",
        seed,
    );
    let kill_at = edges.len() / 4 + (seed as usize % (edges.len() / 2));
    let mut ca = client(&a.addr, &format!("chaos-a-{seed}"));
    let mut acked: Vec<(u32, u32)> = Vec::new();
    let mut attempted = 0;
    let mut consecutive_errors = 0;
    for &(u, v) in &edges[..kill_at] {
        attempted += 1;
        match ca.add_edge(u, v) {
            Ok(()) => {
                acked.push((u, v));
                consecutive_errors = 0;
            }
            // Injected WAL failures surface as hard errors — that write
            // carries no durability promise, move on. A dead trainer stays
            // dead, so stop talking to A entirely (also after a run of
            // errors: retry backoff on a corpse just burns wall clock).
            Err(e) => {
                consecutive_errors += 1;
                if e.to_string().contains("trainer is shut down") || consecutive_errors >= 3 {
                    break;
                }
            }
        }
    }
    drop(ca);
    a.kill9();
    assert!(
        !acked.is_empty(),
        "seed {seed}: no write was ever acknowledged in {attempted} attempts"
    );

    // Phase 2: vandalize the tail, then recover the same bytes two ways.
    vandalize_segment(&store);
    let copy = base.join("reference");
    copy_dir(&store, &copy);
    let mut reference = reference_recover(&copy);
    assert!(reference.report.torn_tail, "seed {seed}: fabricated torn tail not seen");
    assert!(
        reference.report.duplicates >= 1 || acked.is_empty(),
        "seed {seed}: fabricated duplicate record not counted"
    );
    for &(u, v) in &acked {
        assert!(
            reference.graph.has_edge(u, v),
            "seed {seed}: acknowledged add ({u},{v}) lost by recovery"
        );
    }

    // Phase 3: daemon B on the vandalized store. Connection faults stay
    // armed (retry + dedup must hold up); WAL/trainer faults are disarmed
    // so the reference mirror below sees the same apply stream.
    let mut b = Daemon::spawn(&store, "conn_drop=0.06,conn_stall=0.02", seed ^ 0xC0FFEE);
    let mut cb = client(&b.addr, &format!("chaos-b-{seed}"));
    let stats = cb.stats().unwrap();
    assert_eq!(
        stats.get("wal_replayed").and_then(|v| v.as_u64()),
        Some(reference.report.replayed),
        "seed {seed}: daemon and reference replayed different event counts"
    );
    let frozen = embedding_rows(reference.backend.as_mut());
    assert_rows_match(&mut cb, &frozen, "after recovery");

    // Phase 4: resume the stream. Send every edge A never acknowledged;
    // mirror each into the reference trainer. The two apply streams are
    // identical (dedup collapses retries), so the models must stay
    // bit-identical.
    let todo: Vec<(u32, u32)> = edges.iter().copied().filter(|e| !acked.contains(e)).collect();
    for &(u, v) in &todo {
        cb.add_edge(u, v).unwrap_or_else(|e| {
            panic!("seed {seed}: write ({u},{v}) failed on recovered daemon: {e}")
        });
        let _ = reference.backend.ingest(&mut reference.graph, EdgeEvent::Add(u, v));
    }
    cb.flush().unwrap();
    let warm = embedding_rows(reference.backend.as_mut());
    assert_rows_match(&mut cb, &warm, "after resumed ingest");

    // Every edge is now in: acked-on-A survived the kill, the rest were
    // acked on B.
    let stats = cb.stats().unwrap();
    assert_eq!(
        stats.get("edges").and_then(|v| v.as_u64()),
        Some(reference.graph.num_edges() as u64),
        "seed {seed}: edge counts diverge"
    );
    drop(cb);
    b.kill9();
    let _ = std::fs::remove_dir_all(&base);
}
