//! Property tests for the write-ahead log.
//!
//! The WAL is the durability contract of the serve plane: whatever bytes a
//! crash leaves behind, the scanner must recover exactly the acknowledged
//! prefix — never panic, never resurrect a torn record, never apply a
//! duplicate twice. These tests drive the record codec and the recovery
//! path through arbitrary event streams, every possible truncation point,
//! every single-byte corruption, and fabricated duplicate-sequence tails.

use proptest::prelude::*;
use seqge_backend::{BackendSpec, TrainBackend};
use seqge_core::model::EmbeddingModel;
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::{spanning_forest, EdgeEvent};
use seqge_sampling::UpdatePolicy;
use seqge_serve::wal::{encode_record, read_segment, FsyncPolicy, Wal, WalConfig, MAGIC};
use seqge_serve::FaultInjector;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const DIM: usize = 4;
const SEED: u64 = 5;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 8;
    cfg.walk.walks_per_node = 1;
    cfg
}

/// A unique scratch path per call (proptest cases run many per test).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("seqge_walprop_{}_{tag}_{n}", std::process::id()))
}

fn event(kind_add: bool, u: u32, v: u32) -> EdgeEvent {
    if kind_add {
        EdgeEvent::Add(u, v)
    } else {
        EdgeEvent::Remove(u, v)
    }
}

/// Builds raw segment bytes (header + encoded records, seqs 1..=n).
fn segment_bytes(events: &[(bool, u32, u32)]) -> Vec<u8> {
    let mut buf = MAGIC.to_vec();
    for (i, &(k, u, v)) in events.iter().enumerate() {
        buf.extend_from_slice(&encode_record(i as u64 + 1, event(k, u, v)));
    }
    buf
}

fn write_file(path: &Path, bytes: &[u8]) {
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(bytes).unwrap();
}

/// Commits a store over the spanning forest of a small random graph and
/// appends `events` through the real append path; returns the held-out
/// edges that were appended.
fn committed_store(dir: &Path, graph_seed: u64, take: usize) -> Vec<(u32, u32)> {
    let full = erdos_renyi(12, 0.3, graph_seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let mut backend = spec().cold(initial.num_nodes());
    backend.bootstrap(&initial);
    let wcfg = WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Never };
    let wal = Wal::init(&wcfg, &*backend, &initial).unwrap();
    let none = FaultInjector::disabled();
    let edges: Vec<(u32, u32)> = split.removed_edges.into_iter().take(take).collect();
    for &(u, v) in &edges {
        wal.append_then(EdgeEvent::Add(u, v), &none, |_seq| Ok::<(), ()>(())).unwrap();
    }
    edges
}

fn ocfg() -> OsElmConfig {
    OsElmConfig { model: train_cfg().model, ..OsElmConfig::paper_defaults(DIM) }
}

fn spec() -> BackendSpec {
    BackendSpec::float(train_cfg(), ocfg(), UpdatePolicy::every_edge(), SEED)
}

fn recover(dir: &Path) -> seqge_serve::WalBoot {
    let wcfg = WalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Never };
    Wal::recover(&wcfg, &spec(), 0).expect("recovery reads the store").expect("store is committed")
}

fn embedding_bits(backend: &mut dyn TrainBackend) -> Vec<u32> {
    backend.publish_view().as_slice().iter().map(|x| x.to_bits()).collect()
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scanning a cleanly written segment recovers every record exactly.
    #[test]
    fn scan_roundtrips_arbitrary_event_streams(
        events in proptest::collection::vec((any::<bool>(), 0u32..100, 0u32..100), 0..40),
    ) {
        let path = scratch("roundtrip");
        write_file(&path, &segment_bytes(&events));
        let scan = read_segment(&path).unwrap();
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.records.len(), events.len());
        for (i, (rec, &(k, u, v))) in scan.records.iter().zip(&events).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.event, event(k, u, v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncation at *every* byte offset yields exactly the records that
    /// fit, flags the tail as torn iff the cut is mid-record, and never
    /// panics — the on-disk aftermath of kill -9 at any instant.
    #[test]
    fn any_truncation_yields_a_clean_record_prefix(
        events in proptest::collection::vec((any::<bool>(), 0u32..100, 0u32..100), 1..12),
    ) {
        let bytes = segment_bytes(&events);
        // Record boundaries: offsets at which a cut is *not* torn.
        let mut boundaries = vec![MAGIC.len()];
        let mut off = MAGIC.len();
        for _ in &events {
            off += 25; // 4 len + 4 crc + 17 payload
            boundaries.push(off);
        }
        prop_assert_eq!(off, bytes.len());
        let path = scratch("trunc");
        for cut in 0..=bytes.len() {
            write_file(&path, &bytes[..cut]);
            let scan = read_segment(&path).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            prop_assert_eq!(scan.records.len(), whole, "cut at {}", cut);
            let expect_torn = !boundaries.contains(&cut);
            prop_assert_eq!(scan.torn, expect_torn, "cut at {}", cut);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single byte never panics; the scan still returns a
    /// prefix of the original records (a corrupted record and everything
    /// after it are dropped, nothing is invented). Flips inside the magic
    /// are a hard error — that file was never a WAL segment.
    #[test]
    fn any_single_byte_flip_is_survivable(
        events in proptest::collection::vec((any::<bool>(), 0u32..100, 0u32..100), 1..8),
        flip in any::<u8>(),
    ) {
        let bytes = segment_bytes(&events);
        let clean: Vec<_> = {
            let path = scratch("flipref");
            write_file(&path, &bytes);
            let s = read_segment(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            s.records
        };
        let flip = if flip == 0 { 0xFF } else { flip };
        let path = scratch("flip");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            write_file(&path, &corrupt);
            match read_segment(&path) {
                Err(_) => prop_assert!(i < MAGIC.len(), "only a magic flip may hard-error"),
                Ok(scan) => {
                    prop_assert!(
                        scan.records.len() <= clean.len(),
                        "flip at {} invented records", i
                    );
                    prop_assert_eq!(
                        &scan.records[..],
                        &clean[..scan.records.len()],
                        "flip at {} must leave a clean prefix", i
                    );
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Duplicate sequence numbers in the log (a retry that was already
    /// logged, or a fabricated replay) are skipped: recovery of a store
    /// with duplicated records is bit-identical to recovery without them,
    /// and recovering twice is bit-identical too (replay is read-only).
    #[test]
    fn duplicate_records_are_idempotent(graph_seed in 0u64..500) {
        let dir = scratch("dup");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = committed_store(&dir, graph_seed, 6);
        prop_assume!(edges.len() >= 2);
        let pristine = scratch("dup_ref");
        copy_dir(&dir, &pristine);

        // Duplicate every record by appending the whole record region again.
        let seg = dir.join("wal.0.log");
        let bytes = std::fs::read(&seg).unwrap();
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&bytes[MAGIC.len()..]).unwrap();
        drop(f);

        let mut with_dups = recover(&dir);
        let mut reference = recover(&pristine);
        prop_assert_eq!(with_dups.report.duplicates, edges.len() as u64);
        prop_assert_eq!(with_dups.report.replayed, reference.report.replayed);
        prop_assert_eq!(
            embedding_bits(with_dups.backend.as_mut()),
            embedding_bits(reference.backend.as_mut())
        );
        prop_assert_eq!(with_dups.graph.num_edges(), reference.graph.num_edges());

        // Replay is read-only modulo tail healing: a second recovery of the
        // same store reproduces the same state.
        drop(with_dups);
        let mut again = recover(&dir);
        prop_assert_eq!(
            embedding_bits(again.backend.as_mut()),
            embedding_bits(reference.backend.as_mut())
        );
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&pristine).unwrap();
    }
}

/// A committed store whose segment never saw an append (header only), and
/// one whose segment was wiped to zero bytes (created, never flushed):
/// both recover to exactly the snapshot state.
#[test]
fn empty_and_zero_byte_segments_recover_to_snapshot_state() {
    for wipe in [false, true] {
        let dir = scratch(if wipe { "zero" } else { "empty" });
        std::fs::create_dir_all(&dir).unwrap();
        committed_store(&dir, 3, 0);
        if wipe {
            std::fs::File::create(dir.join("wal.0.log")).unwrap();
        }
        let mut boot = recover(&dir);
        assert_eq!(boot.report.replayed, 0);
        assert_eq!(boot.report.torn_tail, wipe, "sub-header file counts as torn");
        assert_eq!(boot.report.next_seq, 1);
        // The recovered model is the committed gen-0 snapshot, bit for bit.
        let m = seqge_core::persist::load_oselm(dir.join("model.0.sge")).unwrap();
        let snapshot_bits: Vec<u32> =
            m.embedding().as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(embedding_bits(boot.backend.as_mut()), snapshot_bits);
        // And the healed log accepts appends again.
        boot.wal
            .append_then(EdgeEvent::Add(0, 1), &FaultInjector::disabled(), |_| Ok::<(), ()>(()))
            .unwrap();
        assert_eq!(boot.wal.appended(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
