//! The wire protocol: one JSON object per LF-terminated line, both ways.
//!
//! ```text
//! request  := { "cmd": <name>, ...params } "\n"
//! response := { "ok": true, ...fields } "\n"
//!           | { "ok": false, "code"?: <class>, "error": <message> } "\n"
//! ```
//!
//! Commands (write plane → trainer thread, read plane → snapshot):
//!
//! | cmd             | params                        | plane  |
//! |-----------------|-------------------------------|--------|
//! | `ping`          | —                             | read   |
//! | `stats`         | —                             | read   |
//! | `get_embedding` | `node`                        | read   |
//! | `topk`          | `node`, `k?=10`, `op?=cosine`, `mode?=exact`, `probes?=8`, `mod?`, `rem?` | read |
//! | `score_link`    | `u`, `v`, `op?=cosine`        | read   |
//! | `add_edge`      | `u`, `v`, `client?`, `seq?`   | write  |
//! | `remove_edge`   | `u`, `v`, `client?`, `seq?`   | write  |
//! | `flush`         | —                             | write  |
//! | `snapshot`      | —                             | write  |
//! | `restore`       | —                             | write  |
//! | `metrics`       | `format?="prometheus"`        | read   |
//! | `trace`         | `after?=0`                    | read   |
//! | `flightrec`     | —                             | read   |
//! | `shutdown`      | —                             | ctrl   |
//!
//! Any request may additionally carry a `trace` object —
//! `{"trace":{"id":"<16 hex>","span":"<16 hex>","sampled":bool}}` — the
//! propagated distributed-tracing context ([`seqge_obs::TraceCtx`]): the
//! server parents its request span under it and honors the caller's
//! sampling decision. The field is pure observability metadata: a
//! malformed `trace` object is ignored rather than failing the request.
//! `trace` returns completed sampled spans from the process ring with
//! `seq > after` (pass the returned `next` back as `after` to tail);
//! `flightrec` returns the live flight-recorder document.
//!
//! `op` is one of `"dot"`, `"cosine"`, `"neg_l2"`. `topk` optionally takes
//! a residue-class candidate filter (`mod` + `rem`): only nodes `v` with
//! `v % mod == rem` compete. The cluster router uses it so each shard
//! answers exactly for the vertex slice it owns. `mode` selects the
//! candidate-generation strategy: `"exact"` (default) scans every vertex,
//! `"ann"` unions LSH buckets (plus `probes` low-margin bit-flip probes per
//! band) and re-ranks the candidates exactly — same scores, same tie-break,
//! approximate only in *which* vertices compete. Lines longer than
//! [`MAX_LINE_BYTES`] are a protocol violation: the server answers with an
//! error and closes the connection (a misbehaving writer cannot make it
//! buffer unboundedly).
//!
//! Write commands may carry a [`WriteId`] (`client` + `seq`): a client that
//! retries after a lost ack resends the *same* id, and the server answers
//! `deduped: true` instead of applying the event twice. `seq` must be
//! strictly increasing per `client` string.
//!
//! ## Reply classification: the `code` field
//!
//! Replies that are neither clean successes nor hard errors carry a stable
//! machine-readable `code` so clients classify them without string-matching
//! the `error` message:
//!
//! - [`CODE_OVERLOADED`] (`"overloaded"`) — the request was *shed*, not
//!   answered: trainer backlog over `max_backlog`, connection queue full,
//!   or (through the router) the owning shard unreachable for a write.
//!   Always on an `ok:false` reply; safe to retry with backoff, reusing
//!   the same [`WriteId`].
//! - [`CODE_DEGRADED`] (`"degraded"`) — the reply is best-effort: a
//!   partial scatter-gather answer (`ok:true` with `degraded:true` +
//!   `missing_shards`), a read served from a lagging replica
//!   (`source:"replica"`), or an `ok:false` when no fallback covered the
//!   key at all. Retrying may or may not improve the answer.
//!
//! Hard errors (bad request, unknown node, malformed JSON) carry no
//! `code`. The `error` text keeps its historical `overloaded:` /
//! `degraded:` prefixes for older string-matching clients, but `code` is
//! the authoritative classifier.

use seqge_eval::EdgeOp;
use seqge_graph::NodeId;
use seqge_obs::TraceCtx;
use serde_json::Value;

/// Hard cap on one request line (including the newline).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// `code` value for shed requests (backlog / queue / shard overload):
/// nothing was answered; retry with backoff under the same [`WriteId`].
pub const CODE_OVERLOADED: &str = "overloaded";

/// `code` value for best-effort replies (partial scatter-gather, replica
/// fallback) and for failures where no fallback covered the key.
pub const CODE_DEGRADED: &str = "degraded";

/// Default `k` for `topk` requests.
pub const DEFAULT_TOPK: usize = 10;

/// Default per-band multi-probe count for `mode:"ann"` topk requests.
pub const DEFAULT_PROBES: usize = 8;

/// Hard cap on the per-request `probes` knob.
pub const MAX_PROBES: usize = 64;

/// Candidate-generation strategy for `topk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopKMode {
    /// Brute-force scan over every vertex (the bit-exact reference).
    #[default]
    Exact,
    /// LSH candidate generation with exact re-ranking; falls back to the
    /// exact scan when no index is published or too few candidates
    /// survive the filters.
    Ann,
}

impl TopKMode {
    /// Wire name (the `mode` request parameter / response field).
    pub fn as_str(self) -> &'static str {
        match self {
            TopKMode::Exact => "exact",
            TopKMode::Ann => "ann",
        }
    }
}

/// Rendering of the `metrics` op's registry dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text-exposition format (for scrapers).
    Prometheus,
    /// One JSON document (for `seqge obs dump`).
    Json,
}

impl MetricsFormat {
    /// Wire name (the `format` request parameter / response field).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricsFormat::Prometheus => "prometheus",
            MetricsFormat::Json => "json",
        }
    }
}

/// Retry-safe identity of one write: clients number their writes so a
/// resend after a lost ack dedups server-side instead of double-applying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteId {
    /// Client identity (any non-empty string, ≤ 128 bytes).
    pub client: String,
    /// Strictly increasing per-client write number.
    pub seq: u64,
}

/// Longest accepted `client` string.
pub const MAX_CLIENT_ID_BYTES: usize = 128;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server/trainer telemetry.
    Stats,
    /// One embedding row.
    GetEmbedding {
        /// Node to look up.
        node: NodeId,
    },
    /// Nearest neighbors of a node.
    TopK {
        /// Query node.
        node: NodeId,
        /// Result count.
        k: usize,
        /// Scoring operator.
        op: EdgeOp,
        /// Residue-class candidate filter `(modulus, remainder)`: only
        /// nodes `v` with `v % modulus == remainder` compete. `None`
        /// considers every node.
        filter: Option<(u32, u32)>,
        /// Candidate-generation strategy (exact scan vs ANN index).
        mode: TopKMode,
        /// Per-band multi-probe count for [`TopKMode::Ann`]; ignored by
        /// the exact path.
        probes: usize,
    },
    /// Edge score for a candidate link.
    ScoreLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// Scoring operator.
        op: EdgeOp,
    },
    /// Queue an edge insertion.
    AddEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// Optional retry-dedup identity.
        write_id: Option<WriteId>,
    },
    /// Queue an edge retraction.
    RemoveEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// Optional retry-dedup identity.
        write_id: Option<WriteId>,
    },
    /// Barrier: wait until every queued event is trained and published.
    Flush,
    /// Persist model + graph to the configured snapshot paths.
    Snapshot,
    /// Reload model + graph from the configured snapshot paths.
    Restore,
    /// Dump the metrics registries (server instance + process-global).
    Metrics {
        /// Output rendering.
        format: MetricsFormat,
    },
    /// Fetch completed sampled spans from the process trace ring.
    Trace {
        /// Only spans with ring sequence strictly greater than this are
        /// returned; pass a response's `next` back to tail incrementally.
        after: u64,
    },
    /// Fetch the live flight-recorder document (recent spans + log lines).
    Flightrec,
    /// Halo diagnostics (sharded deployments): with `node`, the read-only
    /// halo copy of a non-owned vertex row; without, sync-status counters.
    Halo {
        /// Vertex whose halo row to return; `None` asks for status.
        node: Option<NodeId>,
    },
    /// Graceful shutdown of the whole server.
    Shutdown,
}

impl Request {
    /// The wire command name (label value for per-op latency series).
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::GetEmbedding { .. } => "get_embedding",
            Request::TopK { .. } => "topk",
            Request::ScoreLink { .. } => "score_link",
            Request::AddEdge { .. } => "add_edge",
            Request::RemoveEdge { .. } => "remove_edge",
            Request::Flush => "flush",
            Request::Snapshot => "snapshot",
            Request::Restore => "restore",
            Request::Metrics { .. } => "metrics",
            Request::Trace { .. } => "trace",
            Request::Flightrec => "flightrec",
            Request::Halo { .. } => "halo",
            Request::Shutdown => "shutdown",
        }
    }
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    match v.get(key) {
        Some(f) => f
            .as_u64()
            .filter(|&x| x <= u32::MAX as u64)
            .map(|x| x as u32)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer node id")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_op(v: &Value) -> Result<EdgeOp, String> {
    match v.get("op") {
        None => Ok(EdgeOp::Cosine),
        Some(o) => match o.as_str() {
            Some("dot") => Ok(EdgeOp::Dot),
            Some("cosine") => Ok(EdgeOp::Cosine),
            Some("neg_l2") => Ok(EdgeOp::NegL2),
            _ => Err("`op` must be one of \"dot\", \"cosine\", \"neg_l2\"".to_string()),
        },
    }
}

fn get_write_id(v: &Value) -> Result<Option<WriteId>, String> {
    match (v.get("client"), v.get("seq")) {
        (None, None) => Ok(None),
        (Some(c), Some(s)) => {
            let client = c
                .as_str()
                .filter(|c| !c.is_empty() && c.len() <= MAX_CLIENT_ID_BYTES)
                .ok_or_else(|| {
                    format!("`client` must be a non-empty string of at most {MAX_CLIENT_ID_BYTES} bytes")
                })?;
            let seq = s.as_u64().filter(|&x| x > 0).ok_or("`seq` must be a positive integer")?;
            Ok(Some(WriteId { client: client.to_string(), seq }))
        }
        _ => Err("`client` and `seq` must be given together".to_string()),
    }
}

/// Extracts the optional propagated trace context from a parsed request
/// object. Malformed contexts yield `None` — tracing metadata must never
/// fail a request. Reads the *last* `trace` member so a hop that
/// [`attach_trace`]es onto an already-traced line (the router re-parenting
/// a forwarded write under its fan-out span) wins over the original.
fn get_trace(v: &Value) -> Option<TraceCtx> {
    let Value::Object(entries) = v else { return None };
    let t = entries.iter().rev().find(|(k, _)| k == "trace").map(|(_, t)| t)?;
    let trace_id = TraceCtx::parse_id(t.get("id")?.as_str()?)?;
    let parent_span = TraceCtx::parse_id(t.get("span")?.as_str()?)?;
    let sampled = match t.get("sampled") {
        Some(Value::Bool(b)) => *b,
        _ => true,
    };
    Some(TraceCtx { trace_id, parent_span, sampled })
}

/// Renders one completed span as the `trace` op's wire object (mirrors the
/// JSONL exporter's field names so the CLI can treat both alike). Shared by
/// the shard server and the cluster router.
pub fn span_value(rec: &seqge_obs::SpanRecord) -> Value {
    use seqge_obs::trace::fmt_id;
    let mut fields = vec![
        ("trace".to_string(), Value::Str(fmt_id(rec.trace_id))),
        ("span".to_string(), Value::Str(fmt_id(rec.span_id))),
        (
            "parent".to_string(),
            if rec.parent_span == 0 { Value::Null } else { Value::Str(fmt_id(rec.parent_span)) },
        ),
        ("name".to_string(), Value::Str(rec.name.clone())),
        ("ts_us".to_string(), Value::U64(rec.start_unix_ns / 1_000)),
        ("dur_us".to_string(), Value::U64(rec.dur_ns / 1_000)),
        ("tid".to_string(), Value::U64(rec.tid)),
        ("seq".to_string(), Value::U64(rec.seq)),
    ];
    if !rec.tags.is_empty() {
        let tags: Vec<(String, Value)> =
            rec.tags.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
        fields.push(("tags".to_string(), Value::Object(tags)));
    }
    Value::Object(fields)
}

/// Renders a trace context as the wire `trace` field's value.
fn trace_field(ctx: &TraceCtx) -> String {
    format!(
        r#"{{"id":"{}","span":"{}","sampled":{}}}"#,
        seqge_obs::trace::fmt_id(ctx.trace_id),
        seqge_obs::trace::fmt_id(ctx.parent_span),
        ctx.sampled
    )
}

/// Splices `"trace":{...}` into an already-valid request line (the router
/// and loadgen compose lines textually; re-serializing through the parser
/// would lose unknown fields). Replaces any existing `trace` field by
/// appending after it — [`get_trace`] reads the last occurrence, so the
/// newest hop's context wins without textual surgery on the original.
pub fn attach_trace(line: &str, ctx: &TraceCtx) -> String {
    let trimmed = line.trim_end();
    match trimmed.strip_suffix('}') {
        Some(body) => {
            let sep = if body.trim_end().ends_with('{') { "" } else { "," };
            format!("{body}{sep}\"trace\":{}}}", trace_field(ctx))
        }
        None => trimmed.to_string(),
    }
}

/// Parses one request line. Errors are human-readable strings the server
/// echoes back verbatim in the `error` field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_traced(line).map(|(req, _)| req)
}

/// Like [`parse_request`], also returning the propagated trace context if
/// the line carried a well-formed `trace` object.
pub fn parse_request_traced(line: &str) -> Result<(Request, Option<TraceCtx>), String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!("line exceeds {MAX_LINE_BYTES} bytes"));
    }
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;
    let trace = get_trace(&v);
    let req = match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "get_embedding" => Ok(Request::GetEmbedding { node: get_u32(&v, "node")? }),
        "topk" => {
            let k = match v.get("k") {
                None => DEFAULT_TOPK,
                Some(kv) => {
                    kv.as_u64()
                        .filter(|&x| (1..=10_000).contains(&x))
                        .ok_or("`k` must be an integer in 1..=10000")? as usize
                }
            };
            let filter = match (v.get("mod"), v.get("rem")) {
                (None, None) => None,
                (Some(m), Some(r)) => {
                    let m = m
                        .as_u64()
                        .filter(|&x| (1..=u32::MAX as u64).contains(&x))
                        .ok_or("`mod` must be a positive integer")?
                        as u32;
                    let r = r
                        .as_u64()
                        .filter(|&x| x < m as u64)
                        .ok_or("`rem` must be an integer below `mod`")?
                        as u32;
                    Some((m, r))
                }
                _ => return Err("`mod` and `rem` must be given together".to_string()),
            };
            let mode = match v.get("mode") {
                None => TopKMode::Exact,
                Some(m) => match m.as_str() {
                    Some("exact") => TopKMode::Exact,
                    Some("ann") => TopKMode::Ann,
                    _ => return Err("`mode` must be one of \"exact\", \"ann\"".to_string()),
                },
            };
            let probes = match v.get("probes") {
                None => DEFAULT_PROBES,
                Some(p) => p
                    .as_u64()
                    .filter(|&x| x <= MAX_PROBES as u64)
                    .ok_or_else(|| format!("`probes` must be an integer in 0..={MAX_PROBES}"))?
                    as usize,
            };
            Ok(Request::TopK {
                node: get_u32(&v, "node")?,
                k,
                op: get_op(&v)?,
                filter,
                mode,
                probes,
            })
        }
        "score_link" => {
            Ok(Request::ScoreLink { u: get_u32(&v, "u")?, v: get_u32(&v, "v")?, op: get_op(&v)? })
        }
        "add_edge" => Ok(Request::AddEdge {
            u: get_u32(&v, "u")?,
            v: get_u32(&v, "v")?,
            write_id: get_write_id(&v)?,
        }),
        "remove_edge" => Ok(Request::RemoveEdge {
            u: get_u32(&v, "u")?,
            v: get_u32(&v, "v")?,
            write_id: get_write_id(&v)?,
        }),
        "flush" => Ok(Request::Flush),
        "snapshot" => Ok(Request::Snapshot),
        "restore" => Ok(Request::Restore),
        "metrics" => {
            let format = match v.get("format") {
                None => MetricsFormat::Prometheus,
                Some(f) => match f.as_str() {
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some("json") => MetricsFormat::Json,
                    _ => return Err("`format` must be one of \"prometheus\", \"json\"".to_string()),
                },
            };
            Ok(Request::Metrics { format })
        }
        "trace" => {
            let after = match v.get("after") {
                None => 0,
                Some(a) => a.as_u64().ok_or("`after` must be a non-negative integer")?,
            };
            Ok(Request::Trace { after })
        }
        "flightrec" => Ok(Request::Flightrec),
        "halo" => {
            let node = match v.get("node") {
                None => None,
                Some(_) => Some(get_u32(&v, "node")?),
            };
            Ok(Request::Halo { node })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }?;
    Ok((req, trace))
}

/// Conversion into the vendored [`Value`] tree for response fields (the
/// shim's `Value` carries no `From` impls, so the builder brings its own).
pub trait ToJson {
    /// Renders `self` as a [`Value`].
    fn to_json(self) -> Value;
}

impl ToJson for Value {
    fn to_json(self) -> Value {
        self
    }
}
impl ToJson for bool {
    fn to_json(self) -> Value {
        Value::Bool(self)
    }
}
impl ToJson for u64 {
    fn to_json(self) -> Value {
        Value::U64(self)
    }
}
impl ToJson for usize {
    fn to_json(self) -> Value {
        Value::U64(self as u64)
    }
}
impl ToJson for u32 {
    fn to_json(self) -> Value {
        Value::U64(self as u64)
    }
}
impl ToJson for f64 {
    fn to_json(self) -> Value {
        Value::F64(self)
    }
}
impl ToJson for &str {
    fn to_json(self) -> Value {
        Value::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(self) -> Value {
        Value::Str(self)
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(self) -> Value {
        Value::Array(self.into_iter().map(ToJson::to_json).collect())
    }
}

/// Builder for one response line (without the trailing newline).
pub struct Response {
    fields: Vec<(String, Value)>,
}

impl Response {
    /// Starts an `{"ok": true, ...}` response.
    pub fn ok() -> Self {
        Response { fields: vec![("ok".to_string(), Value::Bool(true))] }
    }

    /// A complete `{"ok": false, "error": msg}` line.
    pub fn err(msg: impl std::fmt::Display) -> String {
        let fields = vec![
            ("ok".to_string(), Value::Bool(false)),
            ("error".to_string(), Value::Str(msg.to_string())),
        ];
        serde_json::to_string(&Value::Object(fields)).expect("response serializes")
    }

    /// A complete `{"ok": false, "code": code, "error": msg}` line. `code`
    /// is one of [`CODE_OVERLOADED`] / [`CODE_DEGRADED`]; the message is
    /// carried verbatim (shed paths keep their `overloaded:` prefix for
    /// clients that still classify by text).
    pub fn err_code(code: &str, msg: impl std::fmt::Display) -> String {
        let fields = vec![
            ("ok".to_string(), Value::Bool(false)),
            ("code".to_string(), Value::Str(code.to_string())),
            ("error".to_string(), Value::Str(msg.to_string())),
        ];
        serde_json::to_string(&Value::Object(fields)).expect("response serializes")
    }

    /// Appends one field.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        self.fields.push((key.to_string(), value.to_json()));
        self
    }

    /// Renders the line.
    pub fn build(self) -> String {
        serde_json::to_string(&Value::Object(self.fields)).expect("response serializes")
    }
}

/// The wire name of an [`EdgeOp`] (inverse of the `op` parameter).
pub fn op_name(op: EdgeOp) -> &'static str {
    match op {
        EdgeOp::Dot => "dot",
        EdgeOp::Cosine => "cosine",
        EdgeOp::NegL2 => "neg_l2",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"get_embedding","node":3}"#).unwrap(),
            Request::GetEmbedding { node: 3 }
        );
        let topk_defaults = |node, k, op, filter| Request::TopK {
            node,
            k,
            op,
            filter,
            mode: TopKMode::Exact,
            probes: DEFAULT_PROBES,
        };
        assert_eq!(
            parse_request(r#"{"cmd":"topk","node":1,"k":5,"op":"dot"}"#).unwrap(),
            topk_defaults(1, 5, EdgeOp::Dot, None)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","node":1}"#).unwrap(),
            topk_defaults(1, DEFAULT_TOPK, EdgeOp::Cosine, None)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","node":1,"mod":4,"rem":3}"#).unwrap(),
            topk_defaults(1, DEFAULT_TOPK, EdgeOp::Cosine, Some((4, 3)))
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","node":1,"mode":"ann","probes":2}"#).unwrap(),
            Request::TopK {
                node: 1,
                k: DEFAULT_TOPK,
                op: EdgeOp::Cosine,
                filter: None,
                mode: TopKMode::Ann,
                probes: 2
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","node":1,"mode":"exact"}"#).unwrap(),
            topk_defaults(1, DEFAULT_TOPK, EdgeOp::Cosine, None)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"score_link","u":1,"v":2,"op":"neg_l2"}"#).unwrap(),
            Request::ScoreLink { u: 1, v: 2, op: EdgeOp::NegL2 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"add_edge","u":4,"v":9}"#).unwrap(),
            Request::AddEdge { u: 4, v: 9, write_id: None }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"remove_edge","u":4,"v":9}"#).unwrap(),
            Request::RemoveEdge { u: 4, v: 9, write_id: None }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"add_edge","u":4,"v":9,"client":"c1","seq":7}"#).unwrap(),
            Request::AddEdge {
                u: 4,
                v: 9,
                write_id: Some(WriteId { client: "c1".to_string(), seq: 7 })
            }
        );
        assert_eq!(parse_request(r#"{"cmd":"flush"}"#).unwrap(), Request::Flush);
        assert_eq!(parse_request(r#"{"cmd":"snapshot"}"#).unwrap(), Request::Snapshot);
        assert_eq!(parse_request(r#"{"cmd":"restore"}"#).unwrap(), Request::Restore);
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics { format: MetricsFormat::Prometheus }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics","format":"json"}"#).unwrap(),
            Request::Metrics { format: MetricsFormat::Json }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics { format: MetricsFormat::Prometheus }
        );
        assert_eq!(parse_request(r#"{"cmd":"trace"}"#).unwrap(), Request::Trace { after: 0 });
        assert_eq!(
            parse_request(r#"{"cmd":"trace","after":42}"#).unwrap(),
            Request::Trace { after: 42 }
        );
        assert_eq!(parse_request(r#"{"cmd":"flightrec"}"#).unwrap(), Request::Flightrec);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_bad_metrics_format_and_names_every_command() {
        assert!(parse_request(r#"{"cmd":"metrics","format":"xml"}"#)
            .unwrap_err()
            .contains("format"));
        for (line, name) in [
            (r#"{"cmd":"ping"}"#, "ping"),
            (r#"{"cmd":"stats"}"#, "stats"),
            (r#"{"cmd":"get_embedding","node":0}"#, "get_embedding"),
            (r#"{"cmd":"topk","node":0}"#, "topk"),
            (r#"{"cmd":"score_link","u":0,"v":1}"#, "score_link"),
            (r#"{"cmd":"add_edge","u":0,"v":1}"#, "add_edge"),
            (r#"{"cmd":"remove_edge","u":0,"v":1}"#, "remove_edge"),
            (r#"{"cmd":"flush"}"#, "flush"),
            (r#"{"cmd":"snapshot"}"#, "snapshot"),
            (r#"{"cmd":"restore"}"#, "restore"),
            (r#"{"cmd":"metrics"}"#, "metrics"),
            (r#"{"cmd":"trace"}"#, "trace"),
            (r#"{"cmd":"flightrec"}"#, "flightrec"),
            (r#"{"cmd":"shutdown"}"#, "shutdown"),
        ] {
            assert_eq!(parse_request(line).unwrap().cmd_name(), name);
        }
    }

    #[test]
    fn trace_context_round_trips_through_attach_and_parse() {
        let ctx = TraceCtx { trace_id: 0xabcd, parent_span: 0x1234, sampled: true };
        let line = attach_trace(r#"{"cmd":"topk","node":1,"k":5}"#, &ctx);
        let (req, parsed) = parse_request_traced(&line).unwrap();
        assert_eq!(req.cmd_name(), "topk");
        assert_eq!(parsed, Some(ctx));
        // Unsampled decision survives the wire.
        let cold = TraceCtx { trace_id: 1, parent_span: 2, sampled: false };
        let (_, parsed) = parse_request_traced(&attach_trace(r#"{"cmd":"ping"}"#, &cold)).unwrap();
        assert_eq!(parsed, Some(cold));
        // Lines without a trace field parse to None; plain parse_request
        // still accepts traced lines.
        assert_eq!(parse_request_traced(r#"{"cmd":"ping"}"#).unwrap().1, None);
        assert!(parse_request(&attach_trace(r#"{"cmd":"ping"}"#, &ctx)).is_ok());
    }

    #[test]
    fn malformed_trace_context_is_ignored_not_fatal() {
        for line in [
            r#"{"cmd":"ping","trace":"not an object"}"#,
            r#"{"cmd":"ping","trace":{"id":"zz","span":"01"}}"#,
            r#"{"cmd":"ping","trace":{"id":"01"}}"#,
            r#"{"cmd":"ping","trace":{}}"#,
        ] {
            let (req, ctx) = parse_request_traced(line).unwrap();
            assert_eq!(req, Request::Ping);
            assert_eq!(ctx, None, "line: {line}");
        }
    }

    #[test]
    fn rejects_bad_trace_after() {
        assert!(parse_request(r#"{"cmd":"trace","after":-1}"#).unwrap_err().contains("after"));
        assert!(parse_request(r#"{"cmd":"trace","after":"x"}"#).unwrap_err().contains("after"));
    }

    #[test]
    fn rejects_malformed_json() {
        let err = parse_request("{not json at all").unwrap_err();
        assert!(err.contains("malformed JSON"), "{err}");
        assert!(parse_request("").is_err());
        assert!(parse_request("[1,2,3]").unwrap_err().contains("object"));
        assert!(parse_request("42").unwrap_err().contains("object"));
    }

    #[test]
    fn rejects_unknown_command_and_missing_fields() {
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown command `frobnicate`"));
        assert!(parse_request(r#"{"nocmd":true}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"add_edge","u":1}"#).unwrap_err().contains("`v`"));
        assert!(parse_request(r#"{"cmd":"get_embedding"}"#).unwrap_err().contains("`node`"));
        assert!(parse_request(r#"{"cmd":"add_edge","u":-3,"v":1}"#).unwrap_err().contains("`u`"));
        assert!(parse_request(r#"{"cmd":"add_edge","u":"x","v":1}"#).unwrap_err().contains("`u`"));
    }

    #[test]
    fn rejects_bad_write_ids() {
        // One of the pair without the other.
        assert!(parse_request(r#"{"cmd":"add_edge","u":0,"v":1,"client":"c1"}"#)
            .unwrap_err()
            .contains("together"));
        assert!(parse_request(r#"{"cmd":"add_edge","u":0,"v":1,"seq":3}"#)
            .unwrap_err()
            .contains("together"));
        // seq must be positive, client non-empty and bounded.
        assert!(parse_request(r#"{"cmd":"add_edge","u":0,"v":1,"client":"c1","seq":0}"#)
            .unwrap_err()
            .contains("seq"));
        assert!(parse_request(r#"{"cmd":"add_edge","u":0,"v":1,"client":"","seq":1}"#)
            .unwrap_err()
            .contains("client"));
        let long = "x".repeat(MAX_CLIENT_ID_BYTES + 1);
        assert!(parse_request(&format!(
            r#"{{"cmd":"add_edge","u":0,"v":1,"client":"{long}","seq":1}}"#
        ))
        .unwrap_err()
        .contains("client"));
    }

    #[test]
    fn rejects_bad_op_and_bad_k() {
        assert!(parse_request(r#"{"cmd":"topk","node":1,"op":"manhattan"}"#)
            .unwrap_err()
            .contains("op"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"k":0}"#).unwrap_err().contains("k"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"k":999999}"#).unwrap_err().contains("k"));
    }

    #[test]
    fn rejects_bad_mode_and_probes() {
        assert!(parse_request(r#"{"cmd":"topk","node":1,"mode":"fuzzy"}"#)
            .unwrap_err()
            .contains("mode"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"probes":65}"#)
            .unwrap_err()
            .contains("probes"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"probes":-1}"#)
            .unwrap_err()
            .contains("probes"));
        // probes=0 (exact signature only, no bit flips) is valid.
        assert!(matches!(
            parse_request(r#"{"cmd":"topk","node":1,"mode":"ann","probes":0}"#).unwrap(),
            Request::TopK { probes: 0, mode: TopKMode::Ann, .. }
        ));
    }

    #[test]
    fn rejects_bad_shard_filters() {
        // One of the pair without the other.
        assert!(parse_request(r#"{"cmd":"topk","node":1,"mod":4}"#)
            .unwrap_err()
            .contains("together"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"rem":0}"#)
            .unwrap_err()
            .contains("together"));
        // mod must be positive, rem strictly below mod.
        assert!(parse_request(r#"{"cmd":"topk","node":1,"mod":0,"rem":0}"#)
            .unwrap_err()
            .contains("mod"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"mod":4,"rem":4}"#)
            .unwrap_err()
            .contains("rem"));
        assert!(parse_request(r#"{"cmd":"topk","node":1,"mod":4,"rem":-1}"#)
            .unwrap_err()
            .contains("rem"));
    }

    #[test]
    fn rejects_oversized_line() {
        let big = format!(r#"{{"cmd":"ping","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        assert!(parse_request(&big).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn responses_render_json() {
        let line = Response::ok().field("version", Value::U64(3)).build();
        assert!(line.contains("\"ok\":true") || line.contains("\"ok\": true"));
        assert!(line.contains("version"));
        let err = Response::err("boom");
        assert!(err.contains("\"ok\":false") || err.contains("\"ok\": false"));
        assert!(err.contains("boom"));
        // Round-trips through the parser side.
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom"));
    }

    #[test]
    fn coded_errors_carry_the_classifier_and_stay_error_prefixed() {
        let err = Response::err_code(CODE_OVERLOADED, "overloaded: trainer backlog 9 exceeds 8");
        // Compact rendering: error replies start with the ok:false prefix
        // the server's per-op error counter keys on.
        assert!(err.starts_with(r#"{"ok":false"#), "{err}");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("overloaded: trainer backlog 9 exceeds 8")
        );

        let deg = Response::err_code(CODE_DEGRADED, "degraded: no shard reachable");
        let v: Value = serde_json::from_str(&deg).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("degraded"));

        // Uncoded errors stay exactly as before: no `code` field at all.
        let plain: Value = serde_json::from_str(&Response::err("boom")).unwrap();
        assert!(plain.get("code").is_none());
    }

    #[test]
    fn op_names_roundtrip() {
        for op in [EdgeOp::Dot, EdgeOp::Cosine, EdgeOp::NegL2] {
            let line = format!(r#"{{"cmd":"score_link","u":0,"v":1,"op":"{}"}}"#, op_name(op));
            assert_eq!(parse_request(&line).unwrap(), Request::ScoreLink { u: 0, v: 1, op });
        }
    }
}
