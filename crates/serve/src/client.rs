//! A small scriptable client for the serve protocol.
//!
//! One request per call, blocking, line-delimited — exactly what the smoke
//! script and the end-to-end tests need, and a reference implementation of
//! the wire format for other languages.

use seqge_eval::EdgeOp;
use seqge_graph::NodeId;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::op_name;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn bad_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.to_string())
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        writer.set_read_timeout(Some(Duration::from_secs(300)))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one raw request line, returns the raw response line.
    pub fn call_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Ok(resp.trim_end().to_string())
    }

    /// Sends one request line and parses the response, mapping
    /// `{"ok": false}` to an `InvalidData` error carrying the message.
    pub fn call(&mut self, line: &str) -> io::Result<Value> {
        let resp = self.call_raw(line)?;
        let v: Value =
            serde_json::from_str(&resp).map_err(|e| bad_data(format!("bad response: {e}")))?;
        match v.get("ok") {
            Some(Value::Bool(true)) => Ok(v),
            Some(Value::Bool(false)) => Err(bad_data(
                v.get("error").and_then(Value::as_str).unwrap_or("unknown server error"),
            )),
            _ => Err(bad_data("response missing `ok` field")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.call(r#"{"cmd":"ping"}"#).map(|_| ())
    }

    /// Server telemetry as the raw response object.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.call(r#"{"cmd":"stats"}"#)
    }

    /// The merged metrics registries; `format` is `"prometheus"` or
    /// `"json"`. Returns the unescaped body (Prometheus text exposition or
    /// one JSON document).
    pub fn metrics(&mut self, format: &str) -> io::Result<String> {
        let v = self.call(&format!(r#"{{"cmd":"metrics","format":"{format}"}}"#))?;
        v.get("body")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("metrics: no body"))
    }

    /// Queues an edge insertion.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> io::Result<()> {
        self.call(&format!(r#"{{"cmd":"add_edge","u":{u},"v":{v}}}"#)).map(|_| ())
    }

    /// Queues an edge retraction.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> io::Result<()> {
        self.call(&format!(r#"{{"cmd":"remove_edge","u":{u},"v":{v}}}"#)).map(|_| ())
    }

    /// Barrier: returns the snapshot version that includes every event
    /// queued before this call.
    pub fn flush(&mut self) -> io::Result<u64> {
        let v = self.call(r#"{"cmd":"flush"}"#)?;
        v.get("version").and_then(Value::as_u64).ok_or_else(|| bad_data("flush: no version"))
    }

    /// One embedding row.
    pub fn get_embedding(&mut self, node: NodeId) -> io::Result<Vec<f32>> {
        let v = self.call(&format!(r#"{{"cmd":"get_embedding","node":{node}}}"#))?;
        let arr = v
            .get("embedding")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_data("get_embedding: no embedding array"))?;
        arr.iter()
            .map(|x| x.as_f64().map(|f| f as f32).ok_or_else(|| bad_data("non-numeric element")))
            .collect()
    }

    /// Nearest neighbors, best first.
    pub fn topk(&mut self, node: NodeId, k: usize, op: EdgeOp) -> io::Result<Vec<(NodeId, f64)>> {
        let line = format!(r#"{{"cmd":"topk","node":{node},"k":{k},"op":"{}"}}"#, op_name(op));
        let v = self.call(&line)?;
        let arr = v
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_data("topk: no results"))?;
        arr.iter()
            .map(|item| {
                let node = item
                    .get("node")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad_data("topk: bad node"))?;
                let score = item
                    .get("score")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad_data("topk: bad score"))?;
                Ok((node as NodeId, score))
            })
            .collect()
    }

    /// Link score for a candidate edge.
    pub fn score_link(&mut self, u: NodeId, v: NodeId, op: EdgeOp) -> io::Result<f64> {
        let line = format!(r#"{{"cmd":"score_link","u":{u},"v":{v},"op":"{}"}}"#, op_name(op));
        let resp = self.call(&line)?;
        resp.get("score").and_then(Value::as_f64).ok_or_else(|| bad_data("score_link: no score"))
    }

    /// Persists model + graph server-side; returns the model path.
    pub fn snapshot(&mut self) -> io::Result<String> {
        let v = self.call(r#"{"cmd":"snapshot"}"#)?;
        v.get("model")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("snapshot: no model path"))
    }

    /// Reloads model + graph from the server's snapshot paths.
    pub fn restore(&mut self) -> io::Result<u64> {
        let v = self.call(r#"{"cmd":"restore"}"#)?;
        v.get("version").and_then(Value::as_u64).ok_or_else(|| bad_data("restore: no version"))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.call(r#"{"cmd":"shutdown"}"#).map(|_| ())
    }
}
