//! A small scriptable client for the serve protocol.
//!
//! One request per call, blocking, line-delimited — exactly what the smoke
//! script and the end-to-end tests need, and a reference implementation of
//! the wire format for other languages.
//!
//! The client is failure-aware (see [`ClientConfig`]): every call has a
//! read deadline, transport errors and `overloaded` shedding are retried a
//! bounded number of times with jittered exponential backoff (reconnecting
//! when the transport died), and write ops carry a
//! [`crate::protocol::WriteId`] — the *same* sequence number is resent on
//! every retry of one logical write, so a retry whose original ack was
//! lost dedups server-side instead of double-applying.

use seqge_eval::EdgeOp;
use seqge_graph::NodeId;
use seqge_obs::{Counter, Registry};
use serde_json::Value;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::op_name;

/// Process-wide counter for generated client ids.
static CLIENT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Client resilience knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-call read deadline (a server stalled longer counts as a
    /// transport failure and is retried).
    pub timeout: Duration,
    /// Extra attempts after the first failure (0 = fail fast, the PR 2
    /// behavior).
    pub retries: u32,
    /// Base backoff; attempt `n` sleeps `base * 2^n` plus deterministic
    /// jitter, capped at one second.
    pub backoff: Duration,
    /// Dedup identity sent with writes. Defaults to a process-unique id;
    /// set explicitly when several processes must share one write stream.
    pub client_id: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: Duration::from_secs(300),
            retries: 0,
            backoff: Duration::from_millis(20),
            client_id: format!(
                "c{}-{}",
                std::process::id(),
                CLIENT_COUNTER.fetch_add(1, Ordering::Relaxed)
            ),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Next write sequence number (strictly increasing per client id).
    next_seq: u64,
    /// Deterministic jitter state (seeded from the client id).
    jitter: u64,
    retries_total: Arc<Counter>,
    reconnects_total: Arc<Counter>,
    gaveup_total: Arc<Counter>,
}

fn bad_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.to_string())
}

/// Whether an error is worth a retry: transport failures (reconnect first)
/// and explicit `overloaded` shedding (same connection, after backoff).
/// [`Client::call_once`] normalizes server errors so the message always
/// leads with the reply's `code` when one was sent — this prefix check is
/// code-driven for modern servers and falls back to the historical message
/// prefix for older ones.
fn retryable(e: &io::Error) -> RetryKind {
    match e.kind() {
        ErrorKind::TimedOut
        | ErrorKind::WouldBlock
        | ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionRefused
        | ErrorKind::BrokenPipe => RetryKind::Reconnect,
        ErrorKind::InvalidData if e.to_string().starts_with("overloaded") => RetryKind::Backoff,
        _ => RetryKind::No,
    }
}

#[derive(PartialEq)]
enum RetryKind {
    No,
    Backoff,
    Reconnect,
}

fn open_stream(
    addr: SocketAddr,
    cfg: &ClientConfig,
) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
    let writer = TcpStream::connect(addr)?;
    writer.set_nodelay(true).ok();
    writer.set_read_timeout(Some(cfg.timeout))?;
    writer.set_write_timeout(Some(cfg.timeout))?;
    let reader = BufReader::new(writer.try_clone()?);
    Ok((writer, reader))
}

impl Client {
    /// Connects with default (fail-fast) configuration.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout/retry configuration.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, cfg: ClientConfig) -> io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let (writer, reader) = open_stream(addr, &cfg)?;
        let global = Registry::global();
        let jitter = cfg
            .client_id
            .bytes()
            .fold(0x9E37_79B9_7F4A_7C15u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01B3));
        Ok(Client {
            addr,
            writer,
            reader,
            next_seq: 1,
            jitter: jitter | 1,
            retries_total: global.counter("seqge_serve_client_retries_total"),
            reconnects_total: global.counter("seqge_serve_client_reconnects_total"),
            gaveup_total: global.counter("seqge_serve_client_gaveup_total"),
            cfg,
        })
    }

    /// The configured dedup identity.
    pub fn client_id(&self) -> &str {
        &self.cfg.client_id
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let (writer, reader) = open_stream(self.addr, &self.cfg)?;
        self.writer = writer;
        self.reader = reader;
        self.reconnects_total.inc();
        Ok(())
    }

    fn backoff(&mut self, attempt: u32) {
        // xorshift64* jitter — deterministic per client id, so chaos runs
        // with a fixed id replay the same pacing.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let base = self.cfg.backoff.saturating_mul(1u32 << attempt.min(8));
        let capped = base.min(Duration::from_secs(1));
        let jitter_ns = self.jitter % (capped.as_nanos().max(1) as u64 / 2 + 1);
        std::thread::sleep(capped + Duration::from_nanos(jitter_ns));
    }

    /// Sends one raw request line, returns the raw response line. Single
    /// attempt — retry policy lives in [`Client::call`].
    pub fn call_raw(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// [`Client::call_raw`] with a trace context spliced into the request
    /// line, so the server's span parents to the caller's.
    pub fn call_traced(&mut self, line: &str, ctx: &seqge_obs::TraceCtx) -> io::Result<String> {
        self.call_raw(&crate::protocol::attach_trace(line, ctx))
    }

    /// Pipelining half 1: writes one request line without waiting for the
    /// response. The cluster router fans a query out by sending to every
    /// shard first, then collecting responses — wall clock is the slowest
    /// shard, not the sum.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Pipelining half 2: reads one response line (blocking up to the
    /// configured timeout, see [`Client::set_read_timeout`]).
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Ok(resp.trim_end().to_string())
    }

    /// Overrides the socket read timeout for subsequent receives. The
    /// router shrinks this to each shard's *remaining* deadline while
    /// gathering a fan-out, so one slow shard cannot hold the whole reply
    /// past the budget.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    fn call_once(&mut self, line: &str) -> io::Result<Value> {
        let resp = self.call_raw(line)?;
        let v: Value =
            serde_json::from_str(&resp).map_err(|e| bad_data(format!("bad response: {e}")))?;
        match v.get("ok") {
            Some(Value::Bool(true)) => Ok(v),
            Some(Value::Bool(false)) => {
                let msg = v.get("error").and_then(Value::as_str).unwrap_or("unknown server error");
                // The machine-readable `code` is authoritative: lead the
                // error message with it (unless the text already does) so
                // `retryable` classifies on one shape.
                let msg = match v.get("code").and_then(Value::as_str) {
                    Some(code) if !msg.starts_with(code) => format!("{code}: {msg}"),
                    _ => msg.to_string(),
                };
                Err(bad_data(msg))
            }
            _ => Err(bad_data("response missing `ok` field")),
        }
    }

    /// Sends one request line and parses the response, mapping
    /// `{"ok": false}` to an `InvalidData` error carrying the message.
    /// Transport failures and `overloaded` shedding are retried up to
    /// `cfg.retries` times with backoff (reconnecting as needed); the line
    /// is resent verbatim, so writes must already carry their
    /// [`crate::protocol::WriteId`].
    pub fn call(&mut self, line: &str) -> io::Result<Value> {
        let mut attempt = 0u32;
        loop {
            match self.call_once(line) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let kind = retryable(&e);
                    if kind == RetryKind::No || attempt >= self.cfg.retries {
                        if kind != RetryKind::No {
                            self.gaveup_total.inc();
                        }
                        return Err(e);
                    }
                    self.retries_total.inc();
                    self.backoff(attempt);
                    if kind == RetryKind::Reconnect {
                        // Best-effort: a refused reconnect burns this
                        // attempt and backs off again.
                        let _ = self.reconnect();
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.call(r#"{"cmd":"ping"}"#).map(|_| ())
    }

    /// Server telemetry as the raw response object.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.call(r#"{"cmd":"stats"}"#)
    }

    /// The merged metrics registries; `format` is `"prometheus"` or
    /// `"json"`. Returns the unescaped body (Prometheus text exposition or
    /// one JSON document).
    pub fn metrics(&mut self, format: &str) -> io::Result<String> {
        let v = self.call(&format!(r#"{{"cmd":"metrics","format":"{format}"}}"#))?;
        v.get("body")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("metrics: no body"))
    }

    fn write_edge(&mut self, cmd: &str, u: NodeId, v: NodeId) -> io::Result<Value> {
        // The sequence number is fixed *before* the retry loop: every
        // resend of this logical write carries the same id.
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = format!(
            r#"{{"cmd":"{cmd}","u":{u},"v":{v},"client":"{}","seq":{seq}}}"#,
            self.cfg.client_id
        );
        self.call(&line)
    }

    /// Queues an edge insertion (retry-safe: dedups server-side).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> io::Result<()> {
        self.write_edge("add_edge", u, v).map(|_| ())
    }

    /// Queues an edge retraction (retry-safe: dedups server-side).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> io::Result<()> {
        self.write_edge("remove_edge", u, v).map(|_| ())
    }

    /// Barrier: returns the snapshot version that includes every event
    /// queued before this call.
    pub fn flush(&mut self) -> io::Result<u64> {
        let v = self.call(r#"{"cmd":"flush"}"#)?;
        v.get("version").and_then(Value::as_u64).ok_or_else(|| bad_data("flush: no version"))
    }

    /// One embedding row.
    pub fn get_embedding(&mut self, node: NodeId) -> io::Result<Vec<f32>> {
        let v = self.call(&format!(r#"{{"cmd":"get_embedding","node":{node}}}"#))?;
        let arr = v
            .get("embedding")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_data("get_embedding: no embedding array"))?;
        arr.iter()
            .map(|x| x.as_f64().map(|f| f as f32).ok_or_else(|| bad_data("non-numeric element")))
            .collect()
    }

    /// Nearest neighbors, best first (exact scan).
    pub fn topk(&mut self, node: NodeId, k: usize, op: EdgeOp) -> io::Result<Vec<(NodeId, f64)>> {
        let line = format!(r#"{{"cmd":"topk","node":{node},"k":{k},"op":"{}"}}"#, op_name(op));
        self.parse_topk(&line)
    }

    /// Nearest neighbors via the ANN index: candidates come from the LSH
    /// buckets (`probes` extra probes per band) and are re-ranked exactly.
    /// The server falls back to the exact scan when no index is published.
    pub fn topk_ann(
        &mut self,
        node: NodeId,
        k: usize,
        op: EdgeOp,
        probes: usize,
    ) -> io::Result<Vec<(NodeId, f64)>> {
        let line = format!(
            r#"{{"cmd":"topk","node":{node},"k":{k},"op":"{}","mode":"ann","probes":{probes}}}"#,
            op_name(op)
        );
        self.parse_topk(&line)
    }

    fn parse_topk(&mut self, line: &str) -> io::Result<Vec<(NodeId, f64)>> {
        let v = self.call(line)?;
        let arr = v
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_data("topk: no results"))?;
        arr.iter()
            .map(|item| {
                let node = item
                    .get("node")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad_data("topk: bad node"))?;
                let score = item
                    .get("score")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad_data("topk: bad score"))?;
                Ok((node as NodeId, score))
            })
            .collect()
    }

    /// Link score for a candidate edge.
    pub fn score_link(&mut self, u: NodeId, v: NodeId, op: EdgeOp) -> io::Result<f64> {
        let line = format!(r#"{{"cmd":"score_link","u":{u},"v":{v},"op":"{}"}}"#, op_name(op));
        let resp = self.call(&line)?;
        resp.get("score").and_then(Value::as_f64).ok_or_else(|| bad_data("score_link: no score"))
    }

    /// Persists model + graph server-side; returns the model path.
    pub fn snapshot(&mut self) -> io::Result<String> {
        let v = self.call(r#"{"cmd":"snapshot"}"#)?;
        v.get("model")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("snapshot: no model path"))
    }

    /// Reloads model + graph from the server's snapshot paths.
    pub fn restore(&mut self) -> io::Result<u64> {
        let v = self.call(r#"{"cmd":"restore"}"#)?;
        v.get("version").and_then(Value::as_u64).ok_or_else(|| bad_data("restore: no version"))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.call(r#"{"cmd":"shutdown"}"#).map(|_| ())
    }
}
