//! # seqge-serve — online graph-embedding service
//!
//! The deployment story the paper motivates: OS-ELM skip-gram is
//! *sequentially trainable*, so a long-lived process can absorb dynamic-
//! graph updates without batch retraining. This crate is that process — a
//! pure-`std` daemon (no async runtime; `std::net` + a hand-rolled worker
//! pool) with two planes over one line-delimited JSON protocol:
//!
//! * **write plane** — `add_edge` / `remove_edge` events are queued to a
//!   dedicated trainer thread, batched, and folded into the model through a
//!   pluggable [`seqge_backend::TrainBackend`] (float OS-ELM or the
//!   fixed-point fpga-sim kernel; walks restarted from both endpoints of
//!   each event, §4.3.2), with an optional full-corpus resample cadence for
//!   heavy drift;
//! * **read plane** — `get_embedding`, `topk`, and `score_link` (reusing
//!   `seqge-eval`'s link-prediction operators) answered from an immutable
//!   [`snapshot::EmbeddingSnapshot`] republished after every batch, so no
//!   query ever blocks on a training step;
//!
//! plus `snapshot` / `restore` commands backed by `seqge_core::persist`
//! for crash recovery: a restored server resumes with bit-identical β/P.
//!
//! Crash safety (this PR): the [`wal`] module adds a write-ahead log so
//! every *acknowledged* write survives kill -9 — appended and checksummed
//! before the trainer sees it, replayed over the snapshot at boot. The
//! [`fault`] module injects deterministic failures (torn writes, dropped
//! connections, trainer panics) for the chaos suite, and both client and
//! server grew deadlines, bounded retries, write dedup, and read-shedding
//! backpressure around it.
//!
//! Modules: [`protocol`] (wire grammar), [`snapshot`] (read-optimized
//! state + publication cell), [`trainer`] (write plane), [`server`] (TCP
//! front end), [`client`] (scriptable reference client), [`wal`]
//! (durability), [`fault`] (failure injection), [`dedup`] (bounded
//! retry-dedup table), [`ready`] (port-0 readiness handshake for spawned
//! daemons), [`halo`] (read-only mirrors of peer-shard embedding rows,
//! exchanged by a periodic WAL-style delta log when the server runs as
//! one shard of a `seqge-cluster` deployment).

#![warn(missing_docs)]

pub mod client;
pub mod dedup;
pub mod fault;
pub mod halo;
pub mod protocol;
pub mod ready;
pub mod server;
pub mod snapshot;
pub mod trainer;
pub mod wal;

pub use client::{Client, ClientConfig};
pub use dedup::DedupTable;
pub use fault::{FaultInjector, FaultPoint};
pub use halo::{
    start_halo_sync, HaloConfig, HaloLog, HaloRecord, HaloStore, HaloSyncStats, HaloTailer,
};
pub use protocol::{
    attach_trace, parse_request, parse_request_traced, Request, Response, TopKMode, WriteId,
    CODE_DEGRADED, CODE_OVERLOADED, DEFAULT_PROBES, MAX_LINE_BYTES,
};
pub use server::{
    boot_cold, boot_restore, boot_restore_spec, boot_wal, start, start_backend, ServeConfig,
    ServerHandle,
};
pub use snapshot::{AnnTopK, EmbeddingSnapshot, SnapshotCell, SnapshotReader};
pub use trainer::{ServeStats, Trainer, TrainerConfig, TrainerMsg};
pub use wal::{FsyncPolicy, RecoveryReport, Wal, WalBoot, WalConfig};
