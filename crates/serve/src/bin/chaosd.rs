//! chaosd — a minimal WAL-backed serve daemon for the chaos suite.
//!
//! The integration tests need a process they can really `kill -9`
//! (in-process threads can't be SIGKILLed selectively), so this binary
//! boots a server from a committed WAL store and serves until killed.
//! Fault injection is armed through the usual `SEQGE_FAULT*` environment.
//!
//! ```text
//! chaosd --dir STORE [--dim 8] [--seed 11] [--fsync batch]
//!        [--refresh-every 0] [--addr 127.0.0.1:0] [--backend float]
//! ```
//!
//! Prints `READY <addr>` on stdout once the listener is up. The training
//! configuration is fixed (and mirrored in `tests/chaos.rs`): paper
//! defaults at the given dim with walk_length 12, walks_per_node 2.

use seqge_backend::{BackendKind, BackendSpec};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_sampling::UpdatePolicy;
use seqge_serve::wal::WalConfig;
use seqge_serve::{
    boot_wal, ready, start_backend, FaultInjector, FsyncPolicy, ServeConfig, TrainerConfig,
};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("chaosd: {msg}");
    exit(2);
}

fn train_cfg(dim: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut dim = 8usize;
    let mut seed = 11u64;
    let mut fsync = FsyncPolicy::Batch;
    let mut refresh_every = 0u64;
    let mut addr = "127.0.0.1:0".to_string();
    let mut backend = BackendKind::Float;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| fail(format!("{flag}: missing value")));
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value())),
            "--dim" => dim = value().parse().unwrap_or_else(|_| fail("--dim: not a number")),
            "--seed" => seed = value().parse().unwrap_or_else(|_| fail("--seed: not a number")),
            "--fsync" => fsync = FsyncPolicy::parse(&value()).unwrap_or_else(|e| fail(e)),
            "--refresh-every" => {
                refresh_every =
                    value().parse().unwrap_or_else(|_| fail("--refresh-every: not a number"))
            }
            "--addr" => addr = value(),
            "--backend" => backend = BackendKind::parse(&value()).unwrap_or_else(|e| fail(e)),
            other => fail(format!("unknown flag `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| fail("--dir is required"));

    let fault = match FaultInjector::from_env() {
        Ok(f) => f,
        Err(e) => fail(e),
    };
    let cfg = train_cfg(dim);
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
    let spec = BackendSpec::new(backend, cfg, ocfg, UpdatePolicy::every_edge(), seed);
    let wcfg = WalConfig { dir, fsync };
    let boot = match boot_wal(&wcfg, None, &spec, refresh_every) {
        Ok(b) => b,
        Err(e) => fail(format!("boot: {e}")),
    };
    eprintln!(
        "chaosd: recovered gen {} segment {} (replayed {}, skipped {}, torn tail: {})",
        boot.report.gen,
        boot.report.segment,
        boot.report.replayed,
        boot.report.skipped_applied,
        boot.report.torn_tail
    );
    let config = ServeConfig {
        trainer: TrainerConfig { refresh_every, ..TrainerConfig::default() },
        wal: Some(Arc::new(boot.wal)),
        fault: Arc::new(fault),
        ..ServeConfig::default()
    };
    let handle = match start_backend(&addr, boot.graph, boot.backend, config) {
        Ok(h) => h,
        Err(e) => fail(format!("listen: {e}")),
    };
    ready::announce(handle.addr());
    if let Err(e) = handle.wait() {
        fail(format!("server: {e}"));
    }
}
