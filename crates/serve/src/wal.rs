//! Write-ahead log: crash durability for the serve plane's write path.
//!
//! PR 2's server only persisted on periodic/SIGINT snapshots, so a crash
//! silently discarded every acknowledged `add_edge`/`remove_edge` since the
//! last snapshot. This module closes that hole with the classic recipe:
//!
//! * every accepted edge event is appended to a log segment **before** it
//!   is handed to the trainer, as a length-prefixed, CRC-checksummed,
//!   sequence-numbered record;
//! * recovery loads the newest snapshot generation and replays the
//!   segment's unapplied suffix through a fresh
//!   [`IncrementalTrainer`] — the *same* code path a live server uses
//!   after [`crate::boot_restore`], so a recovered server is bit-identical
//!   to one that never crashed;
//! * snapshots rotate the log: a new generation (`model.<g>.sge`,
//!   `graph.<g>.edges`) plus a new segment carrying only unapplied records
//!   are made durable first, then `meta.json` is swapped in by an atomic
//!   rename — the single commit point. A crash anywhere leaves either the
//!   old or the new generation fully intact.
//!
//! ## On-disk layout (`--wal-dir`)
//!
//! ```text
//! meta.json          atomic commit pointer {gen, applied_seq, segment, since_refresh}
//! model.<g>.sge      OS-ELM snapshot, generation g   (core persist format)
//! graph.<g>.edges    graph snapshot, generation g
//! wal.<s>.log        active segment: "SGW1" then records
//! ```
//!
//! Record: `len:u32 | crc32:u32 | payload`, payload =
//! `seq:u64 | kind:u8 (1=add, 2=remove) | u:u32 | v:u32`, all little-endian.
//! A scan stops at the first torn or checksum-failing record; recovery
//! truncates that tail (an append that died mid-write never got acked, so
//! dropping it is correct).
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] survives power loss (fsync per append),
//! [`FsyncPolicy::Batch`] survives process crashes unconditionally (the
//! page cache owes nothing to the process) and group-commits against power
//! loss — fsync on a count/age threshold under load, and unconditionally
//! the moment the trainer's queue drains — [`FsyncPolicy::Never`] leaves
//! durability to the OS page cache entirely.

use crate::fault::{FaultInjector, FaultPoint};
use seqge_backend::{BackendSpec, TrainBackend};
use seqge_graph::{io as graph_io, EdgeEvent, Graph};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Segment header magic (also the format version).
pub const MAGIC: &[u8; 4] = b"SGW1";

/// Hard cap on one record's payload; a corrupt length field can never make
/// the scanner allocate or skip unboundedly.
pub const MAX_RECORD_BYTES: u32 = 1024;

/// Batch policy: fsync after this many unsynced appends…
const BATCH_FSYNC_EVERY: usize = 64;
/// …or when the oldest unsynced append is this old.
const BATCH_FSYNC_AGE: Duration = Duration::from_millis(25);

/// When to fsync the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync every append before acking (power-loss safe).
    Always,
    /// fsync on a count/age threshold and at batch boundaries
    /// (process-crash safe; bounded loss on power loss).
    Batch,
    /// Never fsync; durability rides on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            _ => Err(format!("fsync policy `{s}`: want always|batch|never")),
        }
    }

    /// The flag spelling of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Where the WAL lives and how hard it syncs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments, snapshot generations, and `meta.json`.
    pub dir: PathBuf,
    /// Sync policy for the active segment.
    pub fsync: FsyncPolicy,
}

/// CRC-32 (IEEE, reflected). Bitwise — records are tiny, a table buys
/// nothing here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number assigned at append time (first is 1).
    pub seq: u64,
    /// The logged mutation.
    pub event: EdgeEvent,
}

/// Encodes one record (header + checksummed payload).
pub fn encode_record(seq: u64, event: EdgeEvent) -> Vec<u8> {
    let (kind, (u, v)) = match event {
        EdgeEvent::Add(u, v) => (1u8, (u, v)),
        EdgeEvent::Remove(u, v) => (2u8, (u, v)),
    };
    let mut payload = Vec::with_capacity(17);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.push(kind);
    payload.extend_from_slice(&u.to_le_bytes());
    payload.extend_from_slice(&v.to_le_bytes());
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() != 17 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let u = u32::from_le_bytes(payload[9..13].try_into().ok()?);
    let v = u32::from_le_bytes(payload[13..17].try_into().ok()?);
    let event = match payload[8] {
        1 => EdgeEvent::Add(u, v),
        2 => EdgeEvent::Remove(u, v),
        _ => return None,
    };
    Some(WalRecord { seq, event })
}

/// The result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last intact record (truncation point).
    pub valid_bytes: u64,
    /// Whether the scan stopped before end-of-file (torn tail, bad
    /// checksum, bad length, or unknown record kind).
    pub torn: bool,
}

/// Scans a segment, stopping at the first record that is incomplete or
/// fails its checksum. Never panics on arbitrary bytes past the header.
pub fn read_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < MAGIC.len() {
        // Killed before the header hit the disk: nothing valid yet.
        return Ok(SegmentScan { records: Vec::new(), valid_bytes: 0, torn: true });
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(ErrorKind::InvalidData, "bad WAL segment magic"));
    }
    let mut records = Vec::new();
    let mut off = MAGIC.len();
    let mut torn = false;
    while off < buf.len() {
        if buf.len() - off < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_BYTES || buf.len() - off - 8 < len as usize {
            torn = true;
            break;
        }
        let payload = &buf[off + 8..off + 8 + len as usize];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => {
                torn = true;
                break;
            }
        }
        off += 8 + len as usize;
    }
    Ok(SegmentScan { records, valid_bytes: off as u64, torn })
}

/// Incremental reader over a *live* segment file — the replication feed.
///
/// A replica cannot use [`read_segment`] in a loop (quadratic re-reads)
/// or [`Wal::recover`] (it truncates torn tails, which on a live primary
/// are just records mid-write). The tailer instead holds the file open,
/// remembers how far it has consumed, and on each [`SegmentTailer::poll`]
/// decodes every record that has become complete since the last call. An
/// incomplete tail — the primary's `write_all` caught in flight — is kept
/// pending and retried on the next poll. Appends are visible to the
/// tailer as soon as they hit the page cache; the primary's fsync policy
/// affects durability only, not this feed, which is what bounds
/// replication lag to one poll interval.
///
/// Holding the `File` open also survives segment rotation: after
/// [`Wal::commit_snapshot`] unlinks the old segment, the open descriptor
/// still reads every byte that was written to it, so the replica can
/// drain the old generation to EOF before switching to the new segment
/// path (sequence-number dedup absorbs the records the rotation carried
/// forward).
#[derive(Debug)]
pub struct SegmentTailer {
    path: PathBuf,
    file: Option<File>,
    /// Bytes consumed from the file so far (including any held in
    /// `pending`).
    offset: u64,
    pending: Vec<u8>,
    saw_magic: bool,
    /// Consecutive polls stuck on the same undecodable tail.
    stalled: u32,
}

/// Polls a tail can spend on one incomplete record before the tailer
/// declares it corrupt rather than in-flight. At the replica's poll
/// cadence this is tens of seconds — no real `write_all` straddles that.
const TAILER_STALL_LIMIT: u32 = 2_000;

impl SegmentTailer {
    /// Starts tailing `path`. The file need not exist yet — polls return
    /// empty until it appears (the primary creates segments atomically
    /// enough that a visible file always starts with the magic).
    pub fn new(path: PathBuf) -> SegmentTailer {
        SegmentTailer {
            path,
            file: None,
            offset: 0,
            pending: Vec::new(),
            saw_magic: false,
            stalled: 0,
        }
    }

    /// The segment path this tailer follows.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads newly appended bytes and returns every record that is now
    /// complete, in file order. A torn tail is *not* an error — it stays
    /// pending — but a checksum or framing failure that persists across
    /// many polls is reported as `InvalidData`.
    pub fn poll(&mut self) -> io::Result<Vec<WalRecord>> {
        if self.file.is_none() {
            match File::open(&self.path) {
                Ok(f) => self.file = Some(f),
                Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
                Err(e) => return Err(e),
            }
        }
        let file = self.file.as_mut().expect("tailer file open");
        // A recovery pass on the primary may truncate a torn tail we have
        // buffered but not decoded; drop the vanished bytes from pending.
        let len = file.metadata()?.len();
        if len < self.offset {
            let gone = (self.offset - len) as usize;
            if gone > self.pending.len() {
                return Err(bad_data("segment truncated past decoded records"));
            }
            let keep = self.pending.len() - gone;
            self.pending.truncate(keep);
            self.offset = len;
            self.stalled = 0;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let before = self.pending.len();
        file.read_to_end(&mut self.pending)?;
        self.offset += (self.pending.len() - before) as u64;

        if !self.saw_magic {
            if self.pending.len() < MAGIC.len() {
                return Ok(Vec::new());
            }
            if &self.pending[..MAGIC.len()] != MAGIC {
                return Err(bad_data("bad WAL segment magic"));
            }
            self.pending.drain(..MAGIC.len());
            self.saw_magic = true;
        }

        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            let buf = &self.pending[consumed..];
            if buf.len() < 8 {
                break;
            }
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
            if len == 0 || len > MAX_RECORD_BYTES {
                self.pending.drain(..consumed);
                return Err(bad_data(format!("tailer: bad record length {len}")));
            }
            if buf.len() - 8 < len as usize {
                break;
            }
            let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
            let payload = &buf[8..8 + len as usize];
            if crc32(payload) != crc {
                // Could be a write caught mid-flight (header landed, body
                // not yet). Leave it pending; give up only if it never
                // resolves.
                self.stalled += 1;
                if self.stalled > TAILER_STALL_LIMIT {
                    return Err(bad_data("tailer: checksum mismatch persisted"));
                }
                break;
            }
            match decode_payload(payload) {
                Some(rec) => out.push(rec),
                None => {
                    self.pending.drain(..consumed);
                    return Err(bad_data("tailer: undecodable record payload"));
                }
            }
            consumed += 8 + len as usize;
            self.stalled = 0;
        }
        self.pending.drain(..consumed);
        Ok(out)
    }
}

/// The atomic commit pointer (`meta.json`). A generation/segment exists as
/// far as recovery is concerned only once it is named here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Current snapshot generation.
    pub gen: u64,
    /// Highest sequence number folded into that snapshot (0 = none).
    pub applied_seq: u64,
    /// Active segment number.
    pub segment: u64,
    /// Trainer's `events_since_refresh` at snapshot time, so the
    /// `--refresh-every` cadence replays exactly.
    pub since_refresh: u64,
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.json")
}

fn model_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("model.{gen}.sge"))
}

fn graph_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("graph.{gen}.edges"))
}

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("wal.{seg}.log"))
}

fn fsync_dir(dir: &Path) {
    // Directory fsync makes the rename itself durable; POSIX-only, and
    // best-effort (some filesystems refuse it).
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

fn fsync_path(path: &Path) -> io::Result<()> {
    File::open(path)?.sync_all()
}

fn bad_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.to_string())
}

/// Reads `meta.json`; `Ok(None)` means the directory has never committed
/// (fresh store).
pub fn read_meta(dir: &Path) -> io::Result<Option<Meta>> {
    let path = meta_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let v: Value = serde_json::from_str(&text).map_err(|e| bad_data(format!("meta.json: {e}")))?;
    let field = |k: &str| {
        v.get(k).and_then(Value::as_u64).ok_or_else(|| bad_data(format!("meta.json: bad `{k}`")))
    };
    Ok(Some(Meta {
        gen: field("gen")?,
        applied_seq: field("applied_seq")?,
        segment: field("segment")?,
        since_refresh: field("since_refresh")?,
    }))
}

/// Writes `meta.json` atomically: temp file, fsync, rename, directory
/// fsync. This is the commit point for snapshot rotation.
pub fn write_meta(dir: &Path, meta: Meta) -> io::Result<()> {
    let fields = vec![
        ("gen".to_string(), Value::U64(meta.gen)),
        ("applied_seq".to_string(), Value::U64(meta.applied_seq)),
        ("segment".to_string(), Value::U64(meta.segment)),
        ("since_refresh".to_string(), Value::U64(meta.since_refresh)),
    ];
    let text = serde_json::to_string(&Value::Object(fields)).expect("meta serializes");
    let tmp = dir.join("meta.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, meta_path(dir))?;
    fsync_dir(dir);
    Ok(())
}

/// What recovery did, for logs, the `stats` op, and the chaos assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Snapshot generation restored.
    pub gen: u64,
    /// Segment replayed.
    pub segment: u64,
    /// Events replayed into the model.
    pub replayed: u64,
    /// Records skipped because the snapshot already covered them
    /// (`seq <= applied_seq`).
    pub skipped_applied: u64,
    /// Records skipped as duplicate/out-of-order sequence numbers.
    pub duplicates: u64,
    /// Replayed events the graph rejected (duplicate add, missing remove —
    /// e.g. a retried write that was already applied before the crash).
    pub rejected: u64,
    /// Whether a torn tail was found (and truncated).
    pub torn_tail: bool,
    /// Corpus refreshes triggered during replay by the restored
    /// `--refresh-every` cadence.
    pub refreshes: u64,
    /// `events_since_refresh` after replay (carried into the live trainer).
    pub since_refresh: u64,
    /// Next sequence number to assign.
    pub next_seq: u64,
}

/// A recovered (or freshly initialised) store, ready to serve.
pub struct WalBoot {
    /// The graph as of snapshot + replay.
    pub graph: Graph,
    /// The training backend that performed the replay (model state as of
    /// snapshot + replay, plus the walk corpus/negative-table state the live
    /// trainer continues from).
    pub backend: Box<dyn TrainBackend>,
    /// The open log, ready for appends.
    pub wal: Wal,
    /// What recovery did.
    pub report: RecoveryReport,
}

struct Inner {
    file: File,
    segment: u64,
    gen: u64,
    /// End offset of the last fully-written record; anything past this is
    /// a torn tail from a failed append, healed before the next write.
    tail_valid: u64,
    /// Appends since the last fsync.
    dirty: usize,
    last_sync: Instant,
    next_seq: u64,
}

/// The open write-ahead log. One per server; all appends serialize on an
/// internal lock so log order always equals trainer-channel order.
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    inner: Mutex<Inner>,
    report: RecoveryReport,
    appended: AtomicU64,
    append_errors: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
}

impl Wal {
    /// Initialises a fresh store: generation-0 snapshot of the backend's
    /// model state + `graph`, an empty segment 0, and the first `meta.json`
    /// commit. The snapshot format is the backend's own (float SGE1 kind 2,
    /// fpga-sim kind 3), so recovery refuses a backend switch loudly.
    pub fn init(cfg: &WalConfig, backend: &dyn TrainBackend, graph: &Graph) -> io::Result<Wal> {
        std::fs::create_dir_all(&cfg.dir)?;
        if read_meta(&cfg.dir)?.is_some() {
            return Err(bad_data(format!(
                "wal dir {} already holds a committed store",
                cfg.dir.display()
            )));
        }
        let mpath = model_path(&cfg.dir, 0);
        let gpath = graph_path(&cfg.dir, 0);
        backend.save_state(&mpath)?;
        graph_io::save_graph(graph, &gpath).map_err(|e| bad_data(e.to_string()))?;
        fsync_path(&mpath)?;
        fsync_path(&gpath)?;
        let spath = segment_path(&cfg.dir, 0);
        let mut file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(&spath)?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        write_meta(&cfg.dir, Meta { gen: 0, applied_seq: 0, segment: 0, since_refresh: 0 })?;
        Ok(Wal {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            inner: Mutex::new(Inner {
                file,
                segment: 0,
                gen: 0,
                tail_valid: MAGIC.len() as u64,
                dirty: 0,
                last_sync: Instant::now(),
                next_seq: 1,
            }),
            report: RecoveryReport { next_seq: 1, ..RecoveryReport::default() },
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        })
    }

    /// Recovers a committed store: restores the snapshot generation, replays
    /// the segment's unapplied suffix through a fresh trainer (truncating
    /// any torn tail), and opens the log for appends. `Ok(None)` means the
    /// directory has never committed — call [`Wal::init`] after a cold boot.
    pub fn recover(
        cfg: &WalConfig,
        spec: &BackendSpec,
        refresh_every: u64,
    ) -> io::Result<Option<WalBoot>> {
        let Some((graph, backend, report, scan)) = replay_state(cfg, spec, refresh_every)? else {
            return Ok(None);
        };
        let spath = segment_path(&cfg.dir, report.segment);
        let mut file = OpenOptions::new().read(true).write(true).open(&spath)?;
        let disk_len = file.metadata()?.len();
        let mut tail_valid = scan.valid_bytes;
        if tail_valid < MAGIC.len() as u64 {
            // Killed before the header landed: rebuild the empty segment.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.sync_all()?;
            tail_valid = MAGIC.len() as u64;
        } else if disk_len > tail_valid {
            file.set_len(tail_valid)?;
            file.sync_all()?;
        }
        let wal = Wal {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            inner: Mutex::new(Inner {
                file,
                segment: report.segment,
                gen: report.gen,
                tail_valid,
                dirty: 0,
                last_sync: Instant::now(),
                next_seq: report.next_seq,
            }),
            report,
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        };
        Ok(Some(WalBoot { graph, backend, wal, report }))
    }

    /// Appends `event`, then (still holding the log lock) runs `send` to
    /// hand the assigned sequence number to the trainer — so log order and
    /// apply order can never diverge. If `send` fails the record is rolled
    /// back: an event the trainer will never apply must not resurface on
    /// replay. Returns the sequence number on success.
    pub fn append_then<E>(
        &self,
        event: EdgeEvent,
        fault: &FaultInjector,
        send: impl FnOnce(u64) -> Result<(), E>,
    ) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        if fault.should(FaultPoint::WalAppendError) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected wal append failure"));
        }
        // Heal a torn tail left by an earlier failed append.
        let disk_len = inner.file.metadata()?.len();
        if disk_len > inner.tail_valid {
            let valid = inner.tail_valid;
            inner.file.set_len(valid)?;
        }
        let valid = inner.tail_valid;
        inner.file.seek(SeekFrom::Start(valid))?;
        let seq = inner.next_seq;
        let rec = encode_record(seq, event);
        if fault.should(FaultPoint::WalShortWrite) {
            // A crash mid-write: half a record lands, the append errors
            // out, and tail_valid stays put so the garbage is truncated
            // on the next append (or by replay if we die first).
            let _ = inner.file.write_all(&rec[..rec.len() / 2]);
            let _ = inner.file.flush();
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected short write (torn wal tail)"));
        }
        inner.file.write_all(&rec)?;
        inner.tail_valid += rec.len() as u64;
        inner.dirty += 1;
        match self.fsync {
            FsyncPolicy::Always => {
                inner.file.sync_data()?;
                inner.dirty = 0;
                inner.last_sync = Instant::now();
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            FsyncPolicy::Batch => {
                if inner.dirty >= BATCH_FSYNC_EVERY || inner.last_sync.elapsed() >= BATCH_FSYNC_AGE
                {
                    inner.file.sync_data()?;
                    inner.dirty = 0;
                    inner.last_sync = Instant::now();
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
            }
            FsyncPolicy::Never => {}
        }
        if send(seq).is_err() {
            let valid = inner.tail_valid - rec.len() as u64;
            inner.tail_valid = valid;
            let _ = inner.file.set_len(valid);
            return Err(io::Error::new(ErrorKind::BrokenPipe, "trainer is shut down"));
        }
        inner.next_seq = seq + 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Group commit for the `batch` policy: fsyncs pending appends once
    /// the count/age threshold is met. The trainer calls this at every
    /// batch boundary; under sustained load most boundaries skip the sync,
    /// which is what keeps the WAL's steady-state ingest tax small.
    pub fn batch_commit(&self) -> io::Result<()> {
        self.commit_pending(false)
    }

    /// Unconditional fsync of pending appends — the trainer calls this
    /// when its queue drains and at flush/shutdown barriers, so the
    /// power-loss exposure of an idle server is zero, not "until the next
    /// batch".
    pub fn commit(&self) -> io::Result<()> {
        self.commit_pending(true)
    }

    fn commit_pending(&self, force: bool) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        if inner.dirty == 0 || self.fsync == FsyncPolicy::Never {
            return Ok(());
        }
        if force || inner.dirty >= BATCH_FSYNC_EVERY || inner.last_sync.elapsed() >= BATCH_FSYNC_AGE
        {
            inner.file.sync_data()?;
            inner.dirty = 0;
            inner.last_sync = Instant::now();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The paths the *next* snapshot generation must be written to (by the
    /// trainer, temp-then-rename), before calling
    /// [`Wal::commit_snapshot`].
    pub fn begin_snapshot(&self) -> (u64, PathBuf, PathBuf) {
        let inner = self.inner.lock().expect("wal lock poisoned");
        let gen = inner.gen + 1;
        (gen, model_path(&self.dir, gen), graph_path(&self.dir, gen))
    }

    /// Commits a snapshot generation written to the [`Wal::begin_snapshot`]
    /// paths: rotates to a fresh segment carrying only records with
    /// `seq > applied_seq`, makes everything durable, then swaps
    /// `meta.json`. On return the old generation and segment are deleted.
    pub fn commit_snapshot(&self, applied_seq: u64, since_refresh: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let new_gen = inner.gen + 1;
        let new_seg = inner.segment + 1;
        fsync_path(&model_path(&self.dir, new_gen))?;
        fsync_path(&graph_path(&self.dir, new_gen))?;
        // Carry unapplied records (acked but not yet folded into the new
        // snapshot) into the fresh segment.
        let old_spath = segment_path(&self.dir, inner.segment);
        let scan = read_segment(&old_spath)?;
        let new_spath = segment_path(&self.dir, new_seg);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&new_spath)?;
        file.write_all(MAGIC)?;
        let mut last = applied_seq;
        for rec in &scan.records {
            if rec.seq > last {
                file.write_all(&encode_record(rec.seq, rec.event))?;
                last = rec.seq;
            }
        }
        file.sync_all()?;
        let tail_valid = file.metadata()?.len();
        // The commit point: after this rename, recovery sees the new
        // generation; before it, the old one. Never a mix.
        write_meta(&self.dir, Meta { gen: new_gen, applied_seq, segment: new_seg, since_refresh })?;
        let old_gen = inner.gen;
        inner.file = file;
        inner.segment = new_seg;
        inner.gen = new_gen;
        inner.tail_valid = tail_valid;
        inner.dirty = 0;
        inner.last_sync = Instant::now();
        // Old generation/segment are garbage now; removal is best-effort
        // (a leftover file is re-deleted at the next rotation or ignored).
        let _ = std::fs::remove_file(&old_spath);
        let _ = std::fs::remove_file(model_path(&self.dir, old_gen));
        let _ = std::fs::remove_file(graph_path(&self.dir, old_gen));
        self.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// What recovery did when this log was opened (zeros for a fresh init).
    pub fn recovery(&self) -> RecoveryReport {
        self.report
    }

    /// Records appended since open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Failed appends since open (including injected faults).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    /// Fsyncs issued since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Segment rotations since open.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }
}

/// Restores the committed snapshot and replays the segment in memory —
/// shared by [`Wal::recover`] (which then truncates/opens the log) and
/// [`verify_replay`] (which must not touch the disk).
#[allow(clippy::type_complexity)]
fn replay_state(
    cfg: &WalConfig,
    spec: &BackendSpec,
    refresh_every: u64,
) -> io::Result<Option<(Graph, Box<dyn TrainBackend>, RecoveryReport, SegmentScan)>> {
    let Some(meta) = read_meta(&cfg.dir)? else {
        return Ok(None);
    };
    // `spec.load` = snapshot model state + fresh sequential driver (empty
    // corpus) — the same construction a live server performs after
    // `boot_restore`. Replaying through it reproduces the uninterrupted run
    // bit for bit. It also sniffs the snapshot's kind byte, so booting with
    // the wrong `--backend` fails here instead of replaying garbage.
    let mut backend = spec.load(&model_path(&cfg.dir, meta.gen))?;
    let mut graph = graph_io::load_graph(graph_path(&cfg.dir, meta.gen))
        .map_err(|e| bad_data(e.to_string()))?;
    if backend.num_nodes() != graph.num_nodes() {
        return Err(bad_data(format!(
            "snapshot mismatch: model covers {} nodes, graph has {}",
            backend.num_nodes(),
            graph.num_nodes()
        )));
    }
    let scan = read_segment(&segment_path(&cfg.dir, meta.segment))?;
    let mut report = RecoveryReport {
        gen: meta.gen,
        segment: meta.segment,
        torn_tail: scan.torn,
        since_refresh: meta.since_refresh,
        ..RecoveryReport::default()
    };
    let mut max_seen = meta.applied_seq;
    for rec in &scan.records {
        if rec.seq <= meta.applied_seq {
            report.skipped_applied += 1;
            continue;
        }
        if rec.seq <= max_seen {
            report.duplicates += 1;
            continue;
        }
        max_seen = rec.seq;
        // Mirror of `Trainer::apply`: rejected events don't advance the
        // refresh cadence, and the cadence check runs after every event.
        match backend.ingest(&mut graph, rec.event) {
            Ok(_) => {
                report.replayed += 1;
                report.since_refresh += 1;
            }
            Err(_) => report.rejected += 1,
        }
        if refresh_every > 0 && report.since_refresh >= refresh_every {
            backend.refresh(&graph);
            report.refreshes += 1;
            report.since_refresh = 0;
        }
    }
    report.next_seq = max_seen + 1;
    Ok(Some((graph, backend, report, scan)))
}

/// The result of `--wal-replay-check`.
#[derive(Debug, Clone, Copy)]
pub struct ReplayCheck {
    /// What a recovery of this store would do.
    pub report: RecoveryReport,
    /// Whether two independent replays produced bit-identical embeddings
    /// (they must; anything else means nondeterminism in the replay path).
    pub deterministic: bool,
    /// Rows in the recovered embedding.
    pub nodes: usize,
    /// Embedding dimension.
    pub dim: usize,
}

/// Read-only recovery audit: replays the store twice without modifying any
/// file and compares the resulting embeddings bit for bit.
pub fn verify_replay(
    cfg: &WalConfig,
    spec: &BackendSpec,
    refresh_every: u64,
) -> io::Result<ReplayCheck> {
    let (_, mut backend_a, report, _) = replay_state(cfg, spec, refresh_every)?
        .ok_or_else(|| bad_data(format!("{}: no committed store", cfg.dir.display())))?;
    let (_, mut backend_b, _, _) = replay_state(cfg, spec, refresh_every)?
        .ok_or_else(|| bad_data("store vanished mid-check"))?;
    let ea = backend_a.publish_view();
    let eb = backend_b.publish_view();
    let deterministic = ea.rows() == eb.rows()
        && ea.cols() == eb.cols()
        && ea.as_slice().iter().zip(eb.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits());
    Ok(ReplayCheck { report, deterministic, nodes: ea.rows(), dim: ea.cols() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        for (seq, event) in
            [(1u64, EdgeEvent::Add(3, 9)), (u64::MAX, EdgeEvent::Remove(0, u32::MAX))]
        {
            let rec = encode_record(seq, event);
            assert_eq!(rec.len(), 25);
            let payload = &rec[8..];
            assert_eq!(decode_payload(payload), Some(WalRecord { seq, event }));
        }
    }

    #[test]
    fn scan_stops_at_torn_tail_and_bad_crc() {
        let dir = std::env::temp_dir().join(format!("seqge-wal-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.log");

        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_record(1, EdgeEvent::Add(0, 1)));
        bytes.extend_from_slice(&encode_record(2, EdgeEvent::Remove(0, 1)));
        let full_valid = bytes.len() as u64;
        bytes.extend_from_slice(&encode_record(3, EdgeEvent::Add(2, 3))[..10]); // torn
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_bytes, full_valid);
        assert!(scan.torn);

        // Flip one payload byte of record 1: the scan must stop *before*
        // it, dropping record 2 as well (everything after a bad checksum
        // is suspect).
        let mut corrupt = bytes.clone();
        corrupt[MAGIC.len() + 8 + 3] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let scan = read_segment(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_bytes, MAGIC.len() as u64);
        assert!(scan.torn);

        // Header-only file: clean empty log.
        std::fs::write(&path, MAGIC).unwrap();
        let scan = read_segment(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn);

        // Zero-byte file: torn before the header.
        std::fs::write(&path, b"").unwrap();
        let scan = read_segment(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn);

        // Wrong magic: hard error, not a silent empty log.
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(read_segment(&path).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tailer_follows_incremental_appends_and_torn_tails() {
        let dir = std::env::temp_dir().join(format!("seqge-wal-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.log");

        // Tailing a file that doesn't exist yet is quietly empty.
        let mut tailer = SegmentTailer::new(path.clone());
        assert!(tailer.poll().unwrap().is_empty());

        use std::io::Write as _;
        let mut f = File::create(&path).unwrap();
        f.write_all(MAGIC).unwrap();
        f.flush().unwrap();
        assert!(tailer.poll().unwrap().is_empty());

        // One complete record appears in the next poll…
        f.write_all(&encode_record(1, EdgeEvent::Add(0, 1))).unwrap();
        f.flush().unwrap();
        assert_eq!(tailer.poll().unwrap(), vec![WalRecord { seq: 1, event: EdgeEvent::Add(0, 1) }]);
        // …and is not re-delivered.
        assert!(tailer.poll().unwrap().is_empty());

        // A record split across two writes stays pending until complete.
        let rec = encode_record(2, EdgeEvent::Remove(0, 1));
        f.write_all(&rec[..10]).unwrap();
        f.flush().unwrap();
        assert!(tailer.poll().unwrap().is_empty());
        f.write_all(&rec[10..]).unwrap();
        // A third record lands in the same window: both arrive in order.
        f.write_all(&encode_record(3, EdgeEvent::Add(2, 3))).unwrap();
        f.flush().unwrap();
        assert_eq!(
            tailer.poll().unwrap(),
            vec![
                WalRecord { seq: 2, event: EdgeEvent::Remove(0, 1) },
                WalRecord { seq: 3, event: EdgeEvent::Add(2, 3) },
            ]
        );

        // A torn tail that recovery truncates away: the tailer buffers the
        // partial bytes, then forgets them when the file shrinks back.
        let rec4 = encode_record(4, EdgeEvent::Add(4, 5));
        f.write_all(&rec4[..7]).unwrap();
        f.flush().unwrap();
        let len_with_torn = f.metadata().unwrap().len();
        assert!(tailer.poll().unwrap().is_empty());
        f.set_len(len_with_torn - 7).unwrap();
        assert!(tailer.poll().unwrap().is_empty());
        f.seek(SeekFrom::End(0)).unwrap();
        f.write_all(&rec4).unwrap();
        f.flush().unwrap();
        assert_eq!(tailer.poll().unwrap(), vec![WalRecord { seq: 4, event: EdgeEvent::Add(4, 5) }]);

        // The open descriptor keeps delivering after the path is unlinked
        // (segment rotation on the primary).
        std::fs::remove_file(&path).unwrap();
        f.write_all(&encode_record(5, EdgeEvent::Remove(2, 3))).unwrap();
        f.flush().unwrap();
        assert_eq!(
            tailer.poll().unwrap(),
            vec![WalRecord { seq: 5, event: EdgeEvent::Remove(2, 3) }]
        );

        // A garbage length field is a hard error, not a hang.
        let bad = dir.join("bad.log");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[0xFF; 16]);
        std::fs::write(&bad, &bytes).unwrap();
        let mut t2 = SegmentTailer::new(bad);
        assert!(t2.poll().is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_roundtrip_and_missing() {
        let dir = std::env::temp_dir().join(format!("seqge-wal-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), None);
        let meta = Meta { gen: 3, applied_seq: 41, segment: 5, since_refresh: 2 };
        write_meta(&dir, meta).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), Some(meta));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("batch").unwrap(), FsyncPolicy::Batch);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(p.as_str()).unwrap(), p);
        }
    }
}
