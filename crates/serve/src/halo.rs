//! Halo embeddings: periodic delta-exchange of owned vertex rows between
//! shards.
//!
//! Under single-owner partitioning (`seqge-cluster`'s `edge_owner`), each
//! edge is applied and trained on exactly one shard, so a shard's model
//! only receives training signal for walks over its *owned* edges. The
//! authoritative embedding row for vertex `v` lives on `owner(v)`; every
//! other shard holds a read-only **halo** copy, refreshed by this module:
//!
//! * each shard appends its owned rows to a `halo.log` in its own shard
//!   directory whenever its published snapshot version advances, stamping
//!   every row with that version (a per-vertex monotonic counter);
//! * each shard tails its peers' `halo.log`s with a [`HaloTailer`] — the
//!   same incremental-decode discipline as [`crate::wal::SegmentTailer`] —
//!   and folds newer rows into its [`HaloStore`].
//!
//! Halos live **outside the trainer**: they are serve-plane state answered
//! by the `halo` protocol command, never written into the shard's model.
//! Training therefore stays a pure function of the shard's own event
//! stream — bit-identical recovery, replicas, and the chaos suites are
//! untouched by sync timing.
//!
//! ## Log format
//!
//! `halo.log` mirrors the WAL's framing: a 12-byte header (4-byte magic
//! `SGH1` + a `u64` rotation epoch), then length-prefixed CRC-checked
//! frames
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! payload = vertex: u32 LE | version: u64 LE | dim: u16 LE | dim × f32 LE
//! ```
//!
//! The log is bounded: when it would exceed `max_log_bytes` the writer
//! truncates it in place, bumps the epoch, and rewrites only the latest
//! row per vertex. A tailer that observes the file shrink *or* the epoch
//! change resets to offset zero and re-reads from scratch (the epoch is
//! what makes rotation detectable even when the rewritten log happens to
//! land at the old length); re-reads are harmless because
//! [`HaloStore::apply`] dedups by `(vertex, version)` — a row is folded in
//! only when its version is strictly newer than the stored one, so a
//! rotation racing a torn-tail read can never double-apply a delta.

use crate::snapshot::SnapshotCell;
use crate::wal::crc32;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic bytes opening every halo log.
pub const HALO_MAGIC: &[u8; 4] = b"SGH1";
/// File name of the halo log inside a shard directory.
pub const HALO_LOG_NAME: &str = "halo.log";
/// Header length: magic + rotation epoch.
const HALO_HEADER_LEN: u64 = 12;
/// Hard cap on one frame's payload — dimension 4096 rows and change;
/// anything larger is corruption, not data.
pub const MAX_HALO_RECORD_BYTES: u32 = 4 + 8 + 2 + 4 * 4096;

/// One decoded halo delta: vertex `vertex` had embedding `row` at snapshot
/// `version` on its owner.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloRecord {
    /// Global vertex id.
    pub vertex: u32,
    /// Owner-side snapshot version the row was published at.
    pub version: u64,
    /// The embedding row.
    pub row: Vec<f32>,
}

/// Encodes one frame (header + payload) for `halo.log`.
pub fn encode_halo_record(vertex: u32, version: u64, row: &[f32]) -> Vec<u8> {
    let dim = u16::try_from(row.len()).expect("embedding dimension fits u16");
    let mut payload = Vec::with_capacity(14 + row.len() * 4);
    payload.extend_from_slice(&vertex.to_le_bytes());
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(&dim.to_le_bytes());
    for x in row {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame payload; `None` on any structural mismatch.
pub fn decode_halo_payload(payload: &[u8]) -> Option<HaloRecord> {
    if payload.len() < 14 {
        return None;
    }
    let vertex = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let version = u64::from_le_bytes(payload[4..12].try_into().ok()?);
    let dim = u16::from_le_bytes(payload[12..14].try_into().ok()?) as usize;
    if payload.len() != 14 + dim * 4 {
        return None;
    }
    let row = payload[14..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect();
    Some(HaloRecord { vertex, version, row })
}

/// Append-side of a shard's halo log: writes owned-row deltas, truncating
/// in place when the log outgrows its byte budget (readers recover via the
/// shrink-reset in [`HaloTailer::poll`]).
pub struct HaloLog {
    path: PathBuf,
    file: File,
    written: u64,
    max_bytes: u64,
    epoch: u64,
    rotations: u64,
}

impl HaloLog {
    /// Opens (or creates) `dir/halo.log` and starts a **fresh epoch**: any
    /// existing content — possibly ending in a torn frame from a crashed
    /// previous incarnation — is truncated away, never appended after. The
    /// log is a rolling cache of the latest owned rows and the first sync
    /// tick after boot rewrites the full state, so nothing is lost; peers
    /// see the epoch change and re-read from scratch (their
    /// `(vertex, version)` dedup absorbs the replay).
    pub fn open(dir: &Path, max_bytes: u64) -> io::Result<HaloLog> {
        let path = dir.join(HALO_LOG_NAME);
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let prev_epoch = if len >= HALO_HEADER_LEN {
            let mut hdr = [0u8; HALO_HEADER_LEN as usize];
            file.read_exact(&mut hdr)?;
            if &hdr[0..4] == HALO_MAGIC {
                u64::from_le_bytes(hdr[4..12].try_into().expect("8-byte slice"))
            } else {
                0
            }
        } else {
            0
        };
        let epoch = prev_epoch + 1;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(HALO_MAGIC)?;
        file.write_all(&epoch.to_le_bytes())?;
        file.flush()?;
        Ok(HaloLog {
            path,
            file,
            written: HALO_HEADER_LEN,
            max_bytes: max_bytes.max(128),
            epoch,
            rotations: 0,
        })
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// In-place truncations performed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Appends one tick's worth of deltas: every `(vertex, row)` stamped
    /// with `version`. If the append would push the file past the byte
    /// budget, the log is truncated to zero first and only this (latest)
    /// batch survives — tailers detect the shrink and re-read.
    pub fn append_tick<'a>(
        &mut self,
        version: u64,
        rows: impl Iterator<Item = (u32, &'a [f32])>,
    ) -> io::Result<usize> {
        let mut batch = Vec::new();
        let mut count = 0usize;
        for (vertex, row) in rows {
            batch.extend_from_slice(&encode_halo_record(vertex, version, row));
            count += 1;
        }
        if count == 0 {
            return Ok(0);
        }
        if self.written + batch.len() as u64 > self.max_bytes && self.written > HALO_HEADER_LEN {
            // Rotate: truncate in place with a bumped epoch; the latest
            // batch IS the full current state of this shard's owned rows,
            // so nothing is lost.
            self.epoch += 1;
            self.file.set_len(0)?;
            self.file.seek(SeekFrom::Start(0))?;
            self.file.write_all(HALO_MAGIC)?;
            self.file.write_all(&self.epoch.to_le_bytes())?;
            self.written = HALO_HEADER_LEN;
            self.rotations += 1;
        }
        self.file.write_all(&batch)?;
        self.file.flush()?;
        self.written += batch.len() as u64;
        Ok(count)
    }
}

/// Outcome of one [`HaloTailer::poll`].
#[derive(Debug, Default)]
pub struct HaloPoll {
    /// Frames decoded this poll (before store-side dedup).
    pub records: Vec<HaloRecord>,
    /// Whether the file was observed to shrink (rotation) and the tailer
    /// restarted from offset zero.
    pub reset: bool,
}

/// Incremental reader of a peer shard's `halo.log`.
///
/// Mirrors [`crate::wal::SegmentTailer`]'s discipline — byte-offset
/// cursor, pending buffer for torn tails, CRC verification — with one
/// deliberate difference: any inconsistency (shrink below the cursor,
/// CRC mismatch that persists, malformed frame) resolves by **resetting
/// to offset zero and re-reading**, never by erroring. A halo log is
/// periodically truncated in place by its writer, so "the bytes under my
/// cursor changed" is an expected rotation, not corruption; re-reads are
/// made idempotent by [`HaloStore::apply`]'s `(vertex, version)` dedup.
pub struct HaloTailer {
    path: PathBuf,
    file: Option<File>,
    offset: u64,
    pending: Vec<u8>,
    /// Epoch decoded from the header, once seen.
    epoch: Option<u64>,
    stalled: u32,
}

/// Consecutive polls a torn/garbled tail may persist before the tailer
/// assumes a missed rewrite and resets to offset zero.
const HALO_STALL_LIMIT: u32 = 200;

impl HaloTailer {
    /// Creates a tailer for `path` (typically `peer_dir/halo.log`); the
    /// file need not exist yet.
    pub fn new(path: impl Into<PathBuf>) -> HaloTailer {
        HaloTailer {
            path: path.into(),
            file: None,
            offset: 0,
            pending: Vec::new(),
            epoch: None,
            stalled: 0,
        }
    }

    /// The tailed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn reset(&mut self) {
        self.file = None;
        self.offset = 0;
        self.pending.clear();
        self.epoch = None;
        self.stalled = 0;
    }

    /// Reads and decodes everything appended since the last poll. On a
    /// rotation — the file shrank below the cursor, or the header epoch
    /// changed (a same-length in-place rewrite) — the cursor resets and
    /// the whole file is re-read this same poll.
    pub fn poll(&mut self) -> io::Result<HaloPoll> {
        let mut out = HaloPoll::default();
        if self.file.is_none() {
            match File::open(&self.path) {
                Ok(f) => self.file = Some(f),
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
                Err(e) => return Err(e),
            }
        }
        if self.epoch.is_none() {
            // Until a full header has been decoded, an in-place rotation
            // is undetectable: there is no epoch to compare, and a rewrite
            // to an equal-or-longer file defeats the shrink check. Any
            // partially buffered header bytes could therefore mix the old
            // and new file — never trust them; restart from offset zero
            // each poll until the header lands whole.
            self.offset = 0;
            self.pending.clear();
        }
        let file = self.file.as_mut().expect("file opened above");
        let len = file.metadata()?.len();
        let mut rotated = len < self.offset;
        if !rotated {
            if let Some(seen) = self.epoch {
                if len >= HALO_HEADER_LEN {
                    file.seek(SeekFrom::Start(4))?;
                    let mut b = [0u8; 8];
                    file.read_exact(&mut b)?;
                    rotated = u64::from_le_bytes(b) != seen;
                }
            }
        }
        if rotated {
            // Rotation: the writer truncated in place. Start over; the
            // store's version dedup absorbs the re-read.
            self.reset();
            out.reset = true;
            return self.poll_into(out);
        }
        self.fill_pending()?;
        self.drain_frames(&mut out);
        Ok(out)
    }

    fn poll_into(&mut self, mut out: HaloPoll) -> io::Result<HaloPoll> {
        match File::open(&self.path) {
            Ok(f) => self.file = Some(f),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        }
        self.fill_pending()?;
        self.drain_frames(&mut out);
        Ok(out)
    }

    fn fill_pending(&mut self) -> io::Result<()> {
        let file = self.file.as_mut().expect("fill_pending with file open");
        file.seek(SeekFrom::Start(self.offset))?;
        let read = file.read_to_end(&mut self.pending)?;
        self.offset += read as u64;
        Ok(())
    }

    fn drain_frames(&mut self, out: &mut HaloPoll) {
        let mut consumed = 0usize;
        if self.epoch.is_none() {
            if self.pending.len() < HALO_HEADER_LEN as usize {
                return;
            }
            if &self.pending[0..4] != HALO_MAGIC {
                // Not a halo log (yet) — re-check from scratch next poll.
                self.reset();
                out.reset = true;
                return;
            }
            self.epoch =
                Some(u64::from_le_bytes(self.pending[4..12].try_into().expect("8-byte slice")));
            consumed = HALO_HEADER_LEN as usize;
        }
        loop {
            if self.pending.len() < consumed + 8 {
                break;
            }
            let hdr = &self.pending[consumed..consumed + 8];
            let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4-byte slice"));
            let crc = u32::from_le_bytes(hdr[4..8].try_into().expect("4-byte slice"));
            if len == 0 || len > MAX_HALO_RECORD_BYTES {
                self.reset();
                out.reset = true;
                return;
            }
            let body_end = consumed + 8 + len as usize;
            if self.pending.len() < body_end {
                // Torn tail: a writer mid-append, or our read raced a
                // rotation. Wait — but not forever.
                self.stalled += 1;
                if self.stalled > HALO_STALL_LIMIT {
                    self.reset();
                    out.reset = true;
                }
                break;
            }
            let payload = &self.pending[consumed + 8..body_end];
            if crc32(payload) != crc {
                self.reset();
                out.reset = true;
                return;
            }
            match decode_halo_payload(payload) {
                Some(rec) => out.records.push(rec),
                None => {
                    self.reset();
                    out.reset = true;
                    return;
                }
            }
            self.stalled = 0;
            consumed = body_end;
        }
        self.pending.drain(..consumed);
    }
}

/// Read-only halo state on one shard: the freshest known row per non-owned
/// vertex, plus counters for the metrics plane.
#[derive(Default)]
pub struct HaloStore {
    rows: Mutex<HashMap<u32, (u64, Vec<f32>)>>,
    /// Deltas folded in (version strictly advanced).
    pub applied: AtomicU64,
    /// Deltas dropped by the `(vertex, version)` dedup.
    pub deduped: AtomicU64,
    last_synced: Mutex<Option<Instant>>,
}

impl HaloStore {
    /// An empty store.
    pub fn new() -> HaloStore {
        HaloStore::default()
    }

    /// Folds one delta in if its version is strictly newer than the stored
    /// row's. Returns whether the row was applied. Equal-or-older versions
    /// are counted as deduped — this is what makes log re-reads after
    /// rotation (and any other replay) idempotent.
    pub fn apply(&self, rec: &HaloRecord) -> bool {
        let mut rows = self.rows.lock().expect("halo rows poisoned");
        match rows.get(&rec.vertex) {
            Some((have, _)) if *have >= rec.version => {
                self.deduped.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => {
                rows.insert(rec.vertex, (rec.version, rec.row.clone()));
                self.applied.fetch_add(1, Ordering::Relaxed);
                *self.last_synced.lock().expect("halo stamp poisoned") = Some(Instant::now());
                true
            }
        }
    }

    /// The stored `(version, row)` for `vertex`, if any.
    pub fn row(&self, vertex: u32) -> Option<(u64, Vec<f32>)> {
        self.rows.lock().expect("halo rows poisoned").get(&vertex).cloned()
    }

    /// Vertices currently held.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("halo rows poisoned").len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The highest version across stored rows (0 when empty).
    pub fn max_version(&self) -> u64 {
        self.rows.lock().expect("halo rows poisoned").values().map(|(v, _)| *v).max().unwrap_or(0)
    }

    /// Stamps the store as caught up with every peer log. The sync loop
    /// calls this after each poll cycle in which *all* peer tailers
    /// answered — including cycles where every record deduped or nothing
    /// was appended at all. A quiescent cluster is *fresh*, not stale;
    /// staleness should only grow when polling itself is failing.
    pub fn mark_synced(&self) {
        *self.last_synced.lock().expect("halo stamp poisoned") = Some(Instant::now());
    }

    /// Milliseconds since the halo plane last confirmed it was caught up
    /// with its peers — a delta applied, or a fully-successful poll cycle
    /// ([`Self::mark_synced`]). This is the staleness signal the metrics
    /// plane exports: it stays near one sync period while polling is
    /// healthy (writes or not) and only grows when peer logs cannot be
    /// read. `None` before the first sync.
    pub fn staleness_ms(&self) -> Option<u64> {
        self.last_synced
            .lock()
            .expect("halo stamp poisoned")
            .map(|t| t.elapsed().as_millis().min(u64::MAX as u128) as u64)
    }
}

/// Configuration for one shard's halo-sync loop.
#[derive(Debug, Clone)]
pub struct HaloConfig {
    /// This shard's own directory (where its `halo.log` is written).
    pub dir: PathBuf,
    /// Peer shard directories to tail.
    pub peers: Vec<PathBuf>,
    /// Total shard count (`owner(v) = v % shards`).
    pub shards: usize,
    /// This shard's index (it writes rows with `v % shards == shard_id`).
    pub shard_id: usize,
    /// Delta-exchange cadence (the `--halo-sync-ms` knob). The worst-case
    /// read staleness of a halo row is one snapshot-publish interval plus
    /// two sync periods (one writer tick + one reader tick).
    pub sync: Duration,
    /// Byte budget for `halo.log` before in-place truncation.
    pub max_log_bytes: u64,
}

impl HaloConfig {
    /// Config for shard `shard_id` of `shards` under `base_dir` holding
    /// `shard-<i>` subdirectories (the cluster's layout).
    pub fn for_shard(base_dir: &Path, shard_id: usize, shards: usize, sync: Duration) -> Self {
        let peers = (0..shards)
            .filter(|s| *s != shard_id)
            .map(|s| base_dir.join(format!("shard-{s}")))
            .collect();
        HaloConfig {
            dir: base_dir.join(format!("shard-{shard_id}")),
            peers,
            shards,
            shard_id,
            sync,
            max_log_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Counters the sync loop feeds (registered by the serve stats plane).
pub struct HaloSyncStats {
    /// Owned-row deltas appended to our log.
    pub written: Arc<seqge_obs::Counter>,
    /// Peer deltas folded into the store.
    pub applied: Arc<seqge_obs::Counter>,
    /// Peer deltas dropped by the version dedup.
    pub deduped: Arc<seqge_obs::Counter>,
    /// In-place log truncations.
    pub rotations: Arc<seqge_obs::Counter>,
    /// Vertices in the halo store.
    pub vertices: Arc<seqge_obs::Gauge>,
    /// Milliseconds since the store was last confirmed in sync with every
    /// peer log (successful poll cycle or applied delta) — stays near one
    /// sync period on a healthy, even fully idle, cluster.
    pub staleness_ms: Arc<seqge_obs::Gauge>,
}

/// Spawns the `seqge-halo` thread: every `cfg.sync`, (a) if the published
/// snapshot version advanced, append all owned rows at that version to our
/// `halo.log`; (b) poll every peer tailer and fold newer rows into
/// `store`. Returns the join handle; the loop exits when `stop` is set.
pub fn start_halo_sync(
    cfg: HaloConfig,
    cell: Arc<SnapshotCell>,
    store: Arc<HaloStore>,
    stats: Option<HaloSyncStats>,
    stop: Arc<AtomicBool>,
) -> io::Result<std::thread::JoinHandle<()>> {
    let mut log = HaloLog::open(&cfg.dir, cfg.max_log_bytes)?;
    let mut tailers: Vec<HaloTailer> =
        cfg.peers.iter().map(|p| HaloTailer::new(p.join(HALO_LOG_NAME))).collect();
    let shards = cfg.shards.max(1);
    let shard_id = cfg.shard_id;
    let sync = cfg.sync;
    std::thread::Builder::new().name("seqge-halo".into()).spawn(move || {
        // Written version tracking starts at None so the boot snapshot
        // (version 0, the bootstrap-trained subgraph model) is exchanged
        // too — a shard that never receives a write still publishes its
        // owned rows to its peers once.
        let mut last_written: Option<u64> = None;
        let mut logged_rotations = 0u64;
        let mut logged_applied = 0u64;
        let mut logged_deduped = 0u64;
        while !stop.load(Ordering::Relaxed) {
            // (a) Publish our owned rows when the snapshot advanced.
            let version = cell.version();
            if last_written != Some(version) {
                let snap = cell.load();
                let rows = (0..snap.num_nodes() as u32)
                    .filter(|v| (*v as usize) % shards == shard_id)
                    .filter_map(|v| snap.embedding(v).map(|row| (v, row)));
                match log.append_tick(version, rows) {
                    Ok(n) => {
                        last_written = Some(version);
                        if let Some(s) = &stats {
                            s.written.add(n as u64);
                            let rot = log.rotations();
                            s.rotations.add(rot - logged_rotations);
                            logged_rotations = rot;
                        }
                    }
                    Err(e) => {
                        seqge_obs::static_counter!("seqge_serve_halo_write_errors_total").inc();
                        eprintln!("seqge-halo: append failed: {e}");
                    }
                }
            }
            // (b) Fold in peer deltas. A cycle where every tailer answers
            // counts as a sync even when nothing new arrived — staleness
            // must measure "can I still read my peers", not write volume.
            let mut all_polled = true;
            for tailer in &mut tailers {
                match tailer.poll() {
                    Ok(polled) => {
                        for rec in &polled.records {
                            store.apply(rec);
                        }
                    }
                    Err(e) => {
                        all_polled = false;
                        seqge_obs::static_counter!("seqge_serve_halo_poll_errors_total").inc();
                        eprintln!("seqge-halo: poll {} failed: {e}", tailer.path().display());
                    }
                }
            }
            if all_polled {
                store.mark_synced();
            }
            if let Some(s) = &stats {
                let applied = store.applied.load(Ordering::Relaxed);
                let deduped = store.deduped.load(Ordering::Relaxed);
                s.applied.add(applied - logged_applied);
                s.deduped.add(deduped - logged_deduped);
                logged_applied = applied;
                logged_deduped = deduped;
                s.vertices.set(store.len() as i64);
                if let Some(ms) = store.staleness_ms() {
                    s.staleness_ms.set(ms.min(i64::MAX as u64) as i64);
                }
            }
            std::thread::sleep(sync);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqge_halo_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn roundtrip_encode_decode() {
        let row = vec![1.0f32, -2.5, 0.0, 3.75];
        let frame = encode_halo_record(7, 42, &row);
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 8 + len);
        let rec = decode_halo_payload(&frame[8..]).expect("decodes");
        assert_eq!(rec, HaloRecord { vertex: 7, version: 42, row });
    }

    #[test]
    fn tailer_reads_appends_incrementally() {
        let dir = scratch("tail");
        let mut log = HaloLog::open(&dir, 1 << 20).unwrap();
        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        assert!(tailer.poll().unwrap().records.is_empty());
        log.append_tick(1, [(0u32, &[1.0f32, 2.0][..]), (2, &[3.0, 4.0][..])].into_iter()).unwrap();
        let polled = tailer.poll().unwrap();
        assert_eq!(polled.records.len(), 2);
        assert_eq!(polled.records[0].vertex, 0);
        assert_eq!(polled.records[1].version, 1);
        log.append_tick(2, [(0u32, &[5.0f32, 6.0][..])].into_iter()).unwrap();
        let polled = tailer.poll().unwrap();
        assert_eq!(polled.records.len(), 1);
        assert_eq!(polled.records[0].row, vec![5.0, 6.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_resets_tailer_and_store_dedup_absorbs_rereads() {
        let dir = scratch("rotate");
        // Budget small enough that the second tick rotates.
        let mut log = HaloLog::open(&dir, 80).unwrap();
        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        let store = HaloStore::new();
        log.append_tick(1, [(0u32, &[1.0f32, 2.0][..]), (1, &[3.0, 4.0][..])].into_iter()).unwrap();
        for rec in &tailer.poll().unwrap().records {
            store.apply(rec);
        }
        assert_eq!(store.len(), 2);
        log.append_tick(2, [(0u32, &[9.0f32, 9.0][..]), (1, &[8.0, 8.0][..])].into_iter()).unwrap();
        assert_eq!(log.rotations(), 1, "80-byte budget forces truncation");
        let polled = tailer.poll().unwrap();
        assert!(polled.reset, "shrink must reset the tailer");
        for rec in &polled.records {
            store.apply(rec);
        }
        assert_eq!(store.row(0).unwrap(), (2, vec![9.0, 9.0]));
        assert_eq!(store.row(1).unwrap(), (2, vec![8.0, 8.0]));
        // Re-reading the whole log again applies nothing new.
        let applied_before = store.applied.load(Ordering::Relaxed);
        let mut fresh = HaloTailer::new(dir.join(HALO_LOG_NAME));
        for rec in &fresh.poll().unwrap().records {
            store.apply(rec);
        }
        assert_eq!(store.applied.load(Ordering::Relaxed), applied_before);
        assert!(store.deduped.load(Ordering::Relaxed) >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_applies_only_strictly_newer_versions() {
        let store = HaloStore::new();
        let v1 = HaloRecord { vertex: 3, version: 5, row: vec![1.0] };
        assert!(store.apply(&v1));
        assert!(!store.apply(&v1), "same version is deduped");
        let older = HaloRecord { vertex: 3, version: 4, row: vec![2.0] };
        assert!(!store.apply(&older), "older version is deduped");
        let newer = HaloRecord { vertex: 3, version: 6, row: vec![3.0] };
        assert!(store.apply(&newer));
        assert_eq!(store.row(3).unwrap(), (6, vec![3.0]));
        assert_eq!(store.max_version(), 6);
    }

    #[test]
    fn torn_tail_stays_pending_then_decodes() {
        let dir = scratch("torn");
        let mut log = HaloLog::open(&dir, 1 << 20).unwrap();
        log.append_tick(1, [(4u32, &[1.0f32][..])].into_iter()).unwrap();
        // Hand-append a torn frame (header promises more bytes than exist).
        let frame = encode_halo_record(5, 2, &[2.0]);
        let mut f = OpenOptions::new().append(true).open(dir.join(HALO_LOG_NAME)).unwrap();
        f.write_all(&frame[..frame.len() - 2]).unwrap();
        f.flush().unwrap();
        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        let polled = tailer.poll().unwrap();
        assert_eq!(polled.records.len(), 1, "complete frame decodes, torn one waits");
        // Writer completes the frame; the tailer picks it up.
        f.write_all(&frame[frame.len() - 2..]).unwrap();
        f.flush().unwrap();
        let polled = tailer.poll().unwrap();
        assert_eq!(polled.records.len(), 1);
        assert_eq!(polled.records[0].vertex, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_while_header_partially_buffered_does_not_mix_epochs() {
        let dir = scratch("hdr");
        let path = dir.join(HALO_LOG_NAME);
        // A torn header: only 5 of the 12 header bytes exist on disk.
        std::fs::write(&path, [b'S', b'G', b'H', b'1', 7]).unwrap();
        let mut tailer = HaloTailer::new(&path);
        assert!(tailer.poll().unwrap().records.is_empty());
        // The writer now rewrites the file in place to an equal-or-longer
        // length (fresh epoch + one frame): no shrink, and no decoded
        // epoch for the tailer to compare. It must re-read from scratch
        // instead of resuming mid-header over mixed old/new bytes.
        let mut log = HaloLog::open(&dir, 1 << 20).unwrap();
        log.append_tick(3, [(9u32, &[1.5f32, 2.5][..])].into_iter()).unwrap();
        let polled = tailer.poll().unwrap();
        assert_eq!(polled.records.len(), 1, "clean decode on the very next poll");
        assert_eq!(polled.records[0].vertex, 9);
        assert_eq!(polled.records[0].row, vec![1.5, 2.5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quiescent_sync_is_fresh_not_stale() {
        let store = HaloStore::new();
        assert!(store.staleness_ms().is_none(), "no signal before the first sync");
        store.mark_synced();
        assert!(store.staleness_ms().is_some());
        let rec = HaloRecord { vertex: 1, version: 1, row: vec![1.0] };
        assert!(store.apply(&rec));
        std::thread::sleep(Duration::from_millis(25));
        let idle = store.staleness_ms().unwrap();
        assert!(idle >= 25, "no sync for 25ms: staleness grows ({idle}ms)");
        // A poll cycle where every record dedups (no writes anywhere) must
        // still reset staleness: a quiescent cluster is caught up.
        assert!(!store.apply(&rec), "same version dedups");
        store.mark_synced();
        assert!(store.staleness_ms().unwrap() < idle, "successful sync resets staleness");
    }

    #[test]
    fn corrupt_frame_resets_instead_of_erroring() {
        let dir = scratch("corrupt");
        let mut log = HaloLog::open(&dir, 1 << 20).unwrap();
        log.append_tick(1, [(0u32, &[1.0f32][..])].into_iter()).unwrap();
        // Flip a payload byte of a second frame.
        let mut frame = encode_halo_record(1, 1, &[2.0]);
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut f = OpenOptions::new().append(true).open(dir.join(HALO_LOG_NAME)).unwrap();
        f.write_all(&frame).unwrap();
        f.flush().unwrap();
        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        let polled = tailer.poll().unwrap();
        // The good frame may or may not land this poll depending on where
        // the reset fired; what matters is no error and eventual progress.
        assert!(polled.reset || polled.records.len() == 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
