//! Bind-on-port-0-then-report readiness handshake for test daemons.
//!
//! Every daemon the integration suites spawn (`chaosd`, the cluster's
//! `shardd`) binds `127.0.0.1:0`, lets the kernel pick a free port, and
//! announces the concrete address on stdout with [`announce`]. The test
//! side blocks in [`await_ready`] until the banner arrives. This kills the
//! two classic port races in one move: no fixed port can collide across
//! parallel test processes, and no test connects before the listener is
//! accepting (the banner is only printed once `bind` returned).

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::SocketAddr;
use std::process::Child;

/// The stdout banner prefix both sides agree on.
pub const READY_PREFIX: &str = "READY ";

/// Daemon side: prints `READY <addr>` on stdout and flushes, so a parent
/// blocked on the pipe wakes immediately.
pub fn announce(addr: SocketAddr) {
    println!("{READY_PREFIX}{addr}");
    let _ = io::stdout().flush();
}

/// Parses one banner line into the announced address.
pub fn parse_banner(line: &str) -> Option<SocketAddr> {
    line.strip_prefix(READY_PREFIX)?.trim().parse().ok()
}

/// Test side: reads the child's piped stdout until the `READY` banner and
/// returns the announced address. Fails if the child closes stdout first
/// (it died during boot) or prints something that is not a banner.
pub fn await_ready(child: &mut Child) -> io::Result<SocketAddr> {
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "child stdout is not piped"))?;
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    parse_banner(&line).ok_or_else(|| {
        io::Error::new(
            ErrorKind::InvalidData,
            format!("expected `{READY_PREFIX}<addr>` banner, got {line:?}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_roundtrips() {
        let addr: SocketAddr = "127.0.0.1:41234".parse().unwrap();
        let line = format!("{READY_PREFIX}{addr}\n");
        assert_eq!(parse_banner(&line), Some(addr));
        assert_eq!(parse_banner("BOOTING\n"), None);
        assert_eq!(parse_banner("READY not-an-addr\n"), None);
    }
}
