//! The TCP front end: accept loop, worker thread pool, request dispatch.
//!
//! Pure `std` (no async runtime): a nonblocking acceptor feeds accepted
//! connections into a `Mutex<VecDeque>`/`Condvar` work queue drained by a
//! fixed pool of worker threads. Each worker handles one connection at a
//! time, reading LF-delimited JSON requests with a short read timeout so it
//! can notice shutdown, answering read-plane queries from its own
//! [`SnapshotReader`] cache (lock-free in steady state) and forwarding
//! write-plane commands to the trainer thread.
//!
//! Failure-awareness (all off by default, see [`ServeConfig`]):
//!
//! * with a WAL attached, every write is appended + (policy) fsynced
//!   *before* it is queued to the trainer — an acked write survives kill -9;
//! * retried writes carrying a [`protocol::WriteId`] dedup against a
//!   per-client high-water-mark table instead of double-applying;
//! * read-plane requests are shed with an explicit `overloaded` error once
//!   the trainer backlog passes `max_backlog` — the write plane is never
//!   blocked to protect reads;
//! * the acceptor sheds whole connections once the worker queue passes
//!   `max_conn_queue`;
//! * idle connections are closed after `read_deadline`, and response
//!   writes time out after `write_timeout` instead of blocking a worker
//!   forever on a stalled peer.

use crate::dedup::DedupTable;
use crate::fault::{FaultInjector, FaultPoint};
use crate::halo::{start_halo_sync, HaloConfig, HaloStore};
use crate::protocol::{
    self, op_name, span_value, MetricsFormat, Request, Response, CODE_OVERLOADED, MAX_LINE_BYTES,
};
use crate::snapshot::{EmbeddingSnapshot, SnapshotCell, SnapshotReader};
use crate::trainer::{ServeStats, Trainer, TrainerConfig, TrainerMsg, WriteCtx};
use crate::wal::{Wal, WalBoot, WalConfig};
use seqge_backend::{BackendSpec, FloatBackend, TrainBackend};
use seqge_core::{IncrementalTrainer, OsElmSkipGram, TrainConfig};
use seqge_graph::{EdgeEvent, Graph};
use seqge_obs::{export, Counter, Gauge, Histogram, Registry};
use seqge_sampling::UpdatePolicy;
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Distinct clients the write-dedup table remembers; stalest clients fall
/// out of the sliding window past this (see [`crate::dedup::DedupTable`]).
/// An evicted client's replayed retry is no longer recognized, but the
/// graph invariants (duplicate add / missing remove are rejected) still
/// stop it from training twice — the table is an optimization for crisp
/// `deduped` acks, not the correctness backstop.
const DEDUP_MAX_CLIENTS: usize = 65_536;

/// Server-side configuration (trainer knobs ride along in [`TrainerConfig`]).
pub struct ServeConfig {
    /// Worker threads answering queries (≥ 1).
    pub workers: usize,
    /// Trainer-side knobs: batching, resample policy, snapshot paths.
    pub trainer: TrainerConfig,
    /// Write-ahead log; `None` preserves PR 2's snapshot-only durability.
    pub wal: Option<Arc<Wal>>,
    /// Fault injection schedule (disabled outside chaos testing).
    pub fault: Arc<FaultInjector>,
    /// Shed read-plane requests with `overloaded` once the trainer backlog
    /// passes this many events.
    pub max_backlog: u64,
    /// Shed new connections once this many are queued for workers.
    pub max_conn_queue: usize,
    /// Close a connection after this long without a complete request.
    pub read_deadline: Duration,
    /// Give up writing a response after this long (stalled peer).
    pub write_timeout: Duration,
    /// Halo delta-exchange with peer shards (`None` outside cluster mode).
    /// When set, a `seqge-halo` thread periodically appends this shard's
    /// owned embedding rows to `halo.log` and tails the peers' logs into a
    /// read-only [`HaloStore`] answered by the `halo` wire command.
    pub halo: Option<HaloConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            trainer: TrainerConfig::default(),
            wal: None,
            fault: Arc::new(FaultInjector::disabled()),
            max_backlog: 8192,
            max_conn_queue: 1024,
            read_deadline: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
            halo: None,
        }
    }
}

impl ServeConfig {
    /// Points `snapshot`/`restore` (and the final shutdown snapshot) at
    /// `dir/model.sge` + `dir/graph.edges`, creating `dir` if needed.
    pub fn with_snapshot_dir(mut self, dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        self.trainer.snapshot_model = Some(dir.join("model.sge"));
        self.trainer.snapshot_graph = Some(dir.join("graph.edges"));
        Ok(self)
    }
}

/// Boots a cold model: fresh OS-ELM weights, one bootstrap training pass
/// over `graph` (the "all" protocol), ready to ingest.
pub fn boot_cold(
    graph: &Graph,
    cfg: &TrainConfig,
    ocfg: seqge_core::OsElmConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> (OsElmSkipGram, IncrementalTrainer) {
    let mut model = OsElmSkipGram::new(graph.num_nodes(), ocfg);
    let mut inc = IncrementalTrainer::new(graph.num_nodes(), cfg, policy, seed);
    inc.bootstrap(graph, &mut model);
    (model, inc)
}

/// Restores a previously snapshotted server: the model and graph come back
/// bit-identical from disk and **no retraining happens** — the incremental
/// trainer starts with an empty corpus and rebuilds its negative table from
/// the first post-restore walk.
pub fn boot_restore(
    dir: &Path,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> io::Result<(Graph, OsElmSkipGram, IncrementalTrainer)> {
    let model = seqge_core::persist::load_oselm(dir.join("model.sge"))?;
    let graph = seqge_graph::io::load_graph(dir.join("graph.edges"))
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    if model.beta_t().rows() != graph.num_nodes() {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "snapshot mismatch: model covers {} nodes, graph has {}",
                model.beta_t().rows(),
                graph.num_nodes()
            ),
        ));
    }
    let inc = IncrementalTrainer::new(graph.num_nodes(), cfg, policy, seed);
    Ok((graph, model, inc))
}

/// Backend-generic [`boot_restore`]: rebuilds any engine from the snapshot
/// pair in `dir`, refusing a snapshot written by a different backend (the
/// model file carries its kind byte).
pub fn boot_restore_spec(
    dir: &Path,
    spec: &BackendSpec,
) -> io::Result<(Graph, Box<dyn TrainBackend>)> {
    let backend = spec.load(&dir.join("model.sge"))?;
    let graph = seqge_graph::io::load_graph(dir.join("graph.edges"))
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    if backend.num_nodes() != graph.num_nodes() {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "snapshot mismatch: model covers {} nodes, graph has {}",
                backend.num_nodes(),
                graph.num_nodes()
            ),
        ));
    }
    Ok((graph, backend))
}

/// Boots a WAL-backed store: recovers a committed one (snapshot restore +
/// replay of the unapplied log suffix — `cold_graph` is then ignored), or
/// initialises a fresh store from `cold_graph` with a bootstrap pass. The
/// spec picks the training engine; recovering a store written by a
/// different backend fails loudly (the snapshot carries its kind).
pub fn boot_wal(
    wcfg: &WalConfig,
    cold_graph: Option<Graph>,
    spec: &BackendSpec,
    refresh_every: u64,
) -> io::Result<WalBoot> {
    if let Some(boot) = Wal::recover(wcfg, spec, refresh_every)? {
        return Ok(boot);
    }
    let graph = cold_graph.ok_or_else(|| {
        io::Error::new(
            ErrorKind::NotFound,
            format!("{}: no committed store and no graph to cold-boot from", wcfg.dir.display()),
        )
    })?;
    let mut backend = spec.cold(graph.num_nodes());
    backend.bootstrap(&graph);
    let wal = Wal::init(wcfg, &*backend, &graph)?;
    let report = wal.recovery();
    Ok(WalBoot { graph, backend, wal, report })
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads are detached).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    registry: Arc<Registry>,
    cell: Arc<SnapshotCell>,
    trainer_tx: Sender<TrainerMsg>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (port is concrete even when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag; external signal handlers set this to request a
    /// graceful shutdown (then call [`ServerHandle::shutdown`] to wait).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Shared telemetry counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.stats.clone()
    }

    /// This server's metrics registry (the `metrics` op merges it with
    /// [`Registry::global`]).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// The snapshot cell (in-process clients can query without TCP).
    pub fn cell(&self) -> Arc<SnapshotCell> {
        self.cell.clone()
    }

    /// Blocks until the stop flag is set (by SIGINT, a `shutdown` command,
    /// or another thread), then tears down gracefully.
    pub fn wait(self) -> io::Result<()> {
        while !self.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }

    /// Graceful shutdown: stop accepting, drain the in-flight training
    /// batch, write a final snapshot (if configured), join every thread.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        let (ack_tx, ack_rx) = channel();
        // The trainer may already be gone if every sender dropped; both
        // outcomes mean "drained".
        if self.trainer_tx.send(TrainerMsg::Shutdown(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(30));
        }
        drop(self.trainer_tx);
        for t in self.threads {
            t.join().map_err(|_| io::Error::other("server thread panicked"))?;
        }
        Ok(())
    }
}

/// Starts the server on `addr` with the float OS-ELM engine — the
/// pre-backend signature, kept so snapshot-dir boots ([`boot_cold`] /
/// [`boot_restore`]) stay one call. Wraps the pair into a
/// [`FloatBackend`] and delegates to [`start_backend`].
pub fn start(
    addr: &str,
    graph: Graph,
    model: OsElmSkipGram,
    inc: IncrementalTrainer,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    start_backend(addr, graph, Box::new(FloatBackend::from_parts(model, inc)), config)
}

/// Starts the server on `addr` (use port 0 for an ephemeral port) with any
/// training backend and returns immediately; all work happens on background
/// threads.
pub fn start_backend(
    addr: &str,
    graph: Graph,
    mut backend: Box<dyn TrainBackend>,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    assert!(config.workers >= 1, "need at least one worker");
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Per-server registry: concurrent servers in one process (tests) keep
    // isolated request series; library-level series stay in the global
    // registry and are merged at export time.
    let registry = Arc::new(Registry::new());
    let stats = Arc::new(ServeStats::new(&registry));
    let started = Instant::now();
    // The backend self-describes (engine name + key params) for the `stats`
    // reply and cluster homogeneity checks; captured before the backend
    // moves into the trainer thread.
    let backend_desc: Arc<Value> = Arc::new(
        serde_json::from_str(&backend.descriptor())
            .unwrap_or_else(|_| Value::Str(backend.kind().as_str().to_string())),
    );
    let boot = EmbeddingSnapshot {
        version: 0,
        emb: backend.publish_view(),
        num_edges: graph.num_edges(),
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
        // The trainer's version-0 publish (inside `Trainer::new`, before
        // workers spawn) replaces this indexless snapshot immediately.
        ann: None,
    };
    let cell = Arc::new(SnapshotCell::new(boot));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::<TrainerMsg>();
    let dedup = Arc::new(Mutex::new(DedupTable::new(DEDUP_MAX_CLIENTS)));

    let mut threads = Vec::new();

    // Trainer thread — sole owner of graph + backend (model and
    // incremental-training state).
    let mut trainer = Trainer::new(graph, backend, cell.clone(), stats.clone(), config.trainer);
    trainer.attach_wal(config.wal.clone(), config.fault.clone());
    threads.push(
        thread::Builder::new().name("seqge-trainer".to_string()).spawn(move || trainer.run(rx))?,
    );

    // Halo sync thread (cluster mode only): exchanges owned embedding rows
    // with peer shards; the store it fills is serve-plane state for the
    // `halo` command and never touches the trainer's model.
    let halo = match config.halo {
        Some(hcfg) => {
            let store = Arc::new(HaloStore::new());
            threads.push(start_halo_sync(
                hcfg,
                cell.clone(),
                store.clone(),
                Some(stats.halo_sync()),
                stop.clone(),
            )?);
            Some(store)
        }
        None => None,
    };

    // Work queue of accepted connections.
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));

    for i in 0..config.workers {
        let ctx = WorkerCtx {
            queue: queue.clone(),
            cell: cell.clone(),
            stats: stats.clone(),
            registry: registry.clone(),
            ops: OpMetrics::new(&registry),
            backend: backend_desc.clone(),
            started,
            stop: stop.clone(),
            trainer_tx: tx.clone(),
            wal: config.wal.clone(),
            fault: config.fault.clone(),
            dedup: dedup.clone(),
            halo: halo.clone(),
            max_backlog: config.max_backlog,
            read_deadline: config.read_deadline,
            write_timeout: config.write_timeout,
        };
        threads.push(
            thread::Builder::new().name(format!("seqge-worker-{i}")).spawn(move || ctx.run())?,
        );
    }

    // Acceptor.
    {
        let queue = queue.clone();
        let stop = stop.clone();
        let stats = stats.clone();
        let max_conn_queue = config.max_conn_queue;
        threads.push(thread::Builder::new().name("seqge-accept".to_string()).spawn(move || {
            loop {
                if stop.load(Ordering::SeqCst) {
                    // Wake any workers parked on the condvar so they can exit.
                    queue.1.notify_all();
                    return;
                }
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let mut q = queue.0.lock().expect("conn queue poisoned");
                        if q.len() >= max_conn_queue {
                            // Shed at the door rather than queue unboundedly;
                            // the refusal is best-effort (the socket is still
                            // nonblocking here).
                            drop(q);
                            stats.conn_shed.inc();
                            let msg = Response::err_code(
                                CODE_OVERLOADED,
                                "overloaded: connection queue full",
                            );
                            let _ = stream.write_all(msg.as_bytes());
                            let _ = stream.write_all(b"\n");
                            continue;
                        }
                        q.push_back(stream);
                        queue.1.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(20)),
                }
            }
        })?);
    }

    Ok(ServerHandle { addr, stop, stats, registry, cell, trainer_tx: tx, threads })
}

/// Every wire command, for pre-registering per-op request series.
const OP_NAMES: [&str; 15] = [
    "ping",
    "stats",
    "get_embedding",
    "topk",
    "score_link",
    "add_edge",
    "remove_edge",
    "flush",
    "snapshot",
    "restore",
    "metrics",
    "trace",
    "flightrec",
    "halo",
    "shutdown",
];

/// `"serve."`-prefixed span name for a wire op, precomputed so tracing-off
/// dispatch never allocates.
fn span_name(op: &str) -> &'static str {
    match op {
        "ping" => "serve.ping",
        "stats" => "serve.stats",
        "get_embedding" => "serve.get_embedding",
        "topk" => "serve.topk",
        "score_link" => "serve.score_link",
        "add_edge" => "serve.add_edge",
        "remove_edge" => "serve.remove_edge",
        "flush" => "serve.flush",
        "snapshot" => "serve.snapshot",
        "restore" => "serve.restore",
        "metrics" => "serve.metrics",
        "trace" => "serve.trace",
        "flightrec" => "serve.flightrec",
        "halo" => "serve.halo",
        _ => "serve.shutdown",
    }
}

/// One op's telemetry handles:
/// `(op, latency histogram, request counter, error-reply counter)`.
type OpSeries = (&'static str, Arc<Histogram>, Arc<Counter>, Arc<Counter>);

/// Per-op request telemetry handles, resolved once per worker so the
/// dispatch path never takes the registry mutex.
struct OpMetrics {
    ops: Vec<OpSeries>,
    protocol_errors: Arc<Counter>,
    /// Connections currently inside `handle_connection` across all workers
    /// (the registry hands every worker the same gauge).
    open_conns: Arc<Gauge>,
}

impl OpMetrics {
    fn new(registry: &Registry) -> Self {
        let ops = OP_NAMES
            .iter()
            .map(|&op| {
                (
                    op,
                    registry.histogram_with("seqge_serve_request_latency_ns", &[("op", op)]),
                    registry.counter_with("seqge_serve_requests_total", &[("op", op)]),
                    registry.counter_with("seqge_serve_errors_total", &[("op", op)]),
                )
            })
            .collect();
        OpMetrics {
            ops,
            protocol_errors: registry.counter("seqge_serve_protocol_errors_total"),
            open_conns: registry.gauge("seqge_serve_open_connections"),
        }
    }

    fn get(&self, op: &str) -> Option<&OpSeries> {
        self.ops.iter().find(|(name, ..)| *name == op)
    }
}

struct WorkerCtx {
    queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    registry: Arc<Registry>,
    ops: OpMetrics,
    /// The trainer backend's self-description (engine name + key params),
    /// embedded in every `stats` reply.
    backend: Arc<Value>,
    started: Instant,
    stop: Arc<AtomicBool>,
    trainer_tx: Sender<TrainerMsg>,
    wal: Option<Arc<Wal>>,
    fault: Arc<FaultInjector>,
    /// Per-client highest acked write `seq` (see [`protocol::WriteId`]),
    /// bounded by a sliding recency window.
    dedup: Arc<Mutex<DedupTable>>,
    /// Read-only peer-row mirror (cluster mode only).
    halo: Option<Arc<HaloStore>>,
    max_backlog: u64,
    read_deadline: Duration,
    write_timeout: Duration,
}

impl WorkerCtx {
    fn run(self) {
        loop {
            let conn = {
                let guard = self.queue.0.lock().expect("conn queue poisoned");
                let (mut guard, _) = self
                    .queue
                    .1
                    .wait_timeout_while(guard, Duration::from_millis(100), |q| q.is_empty())
                    .expect("conn queue poisoned");
                guard.pop_front()
            };
            if let Some(stream) = conn {
                self.ops.open_conns.inc();
                let _ = self.handle_connection(stream);
                self.ops.open_conns.dec();
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// Serves one connection until EOF, protocol violation, deadline
    /// expiry, or shutdown.
    fn handle_connection(&self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_write_timeout(Some(self.write_timeout))?;
        stream.set_nodelay(true).ok();
        let mut reader = SnapshotReader::new(self.cell.clone());
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut last_activity = Instant::now();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // EOF
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if last_activity.elapsed() >= self.read_deadline {
                        // Idle past the deadline: free the worker.
                        return Ok(());
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            last_activity = Instant::now();
            pending.extend_from_slice(&chunk[..n]);
            // Process every complete line in the buffer.
            while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..nl]);
                let (response, close) = self.dispatch(text.trim(), &mut reader);
                if self.fault.should(FaultPoint::ConnDrop) {
                    // Ack lost: the request may have been fully applied.
                    // This is the case WriteId dedup exists for.
                    return Ok(());
                }
                if self.fault.should(FaultPoint::ConnStall) {
                    thread::sleep(self.fault.stall());
                }
                stream.write_all(response.as_bytes())?;
                stream.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
            }
            // A line still growing past the cap is a protocol violation:
            // answer once and drop the connection.
            if pending.len() > MAX_LINE_BYTES {
                let msg = Response::err(format!("line exceeds {MAX_LINE_BYTES} bytes"));
                stream.write_all(msg.as_bytes())?;
                stream.write_all(b"\n")?;
                return Ok(());
            }
        }
    }

    fn dispatch(&self, line: &str, reader: &mut SnapshotReader) -> (String, bool) {
        if line.is_empty() {
            self.ops.protocol_errors.inc();
            return (Response::err("empty request line"), false);
        }
        let (req, wire_ctx) = match protocol::parse_request_traced(line) {
            Ok(r) => r,
            Err(e) => {
                self.ops.protocol_errors.inc();
                return (Response::err(e), false);
            }
        };
        let op = req.cmd_name();
        // Span + clock reads are both gated on the timing switch; the
        // request counter is always live (it backs throughput accounting).
        let mut span = seqge_obs::trace::start_span(span_name(op), wire_ctx);
        let t0 = if seqge_obs::timing_enabled() { Some(Instant::now()) } else { None };
        let out = self.handle_request(req, reader, span.ctx());
        if let Some((_, latency, count, errors)) = self.ops.get(op) {
            count.inc();
            // Compact rendering guarantees error replies start with this
            // prefix (asserted in the protocol tests), so shed + hard
            // errors are counted without re-parsing the reply.
            if out.0.starts_with(r#"{"ok":false"#) {
                errors.inc();
            }
            if let Some(t0) = t0 {
                latency.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
        }
        if span.is_active() {
            // Shed/degraded outcomes are always worth keeping, whatever the
            // head-sampling decision said.
            if out.0.contains(r#""code":"overloaded""#) {
                span.force_sample();
                span.tag("outcome", "shed");
            } else if out.0.contains(r#""code":"degraded""#) || out.0.contains(r#""degraded":true"#)
            {
                span.force_sample();
                span.tag("outcome", "degraded");
            }
        }
        out
    }

    /// Whether a read-plane request must be shed to protect the write
    /// plane. The check is a couple of relaxed counter loads.
    fn overloaded(&self) -> bool {
        self.stats.pending() > self.max_backlog
    }

    fn shed_read(&self) -> (String, bool) {
        self.stats.overloaded.inc();
        (
            Response::err_code(
                CODE_OVERLOADED,
                format!(
                    "overloaded: trainer backlog {} exceeds {}",
                    self.stats.pending(),
                    self.max_backlog
                ),
            ),
            false,
        )
    }

    fn handle_request(
        &self,
        req: Request,
        reader: &mut SnapshotReader,
        span_ctx: Option<seqge_obs::TraceCtx>,
    ) -> (String, bool) {
        match req {
            Request::Ping => (Response::ok().field("pong", true).build(), false),
            Request::Stats => {
                let snap = reader.current();
                let mut resp = Response::ok()
                    .field("version", snap.version)
                    .field("nodes", snap.num_nodes())
                    .field("edges", snap.num_edges)
                    .field("dim", snap.dim())
                    .field("walks_trained", snap.walks_trained)
                    .field("edges_inserted", snap.edges_inserted)
                    .field("edges_removed", snap.edges_removed)
                    .field("backend", (*self.backend).clone())
                    .field("snapshot_version", self.cell.version())
                    .field("uptime_ms", self.started.elapsed().as_millis() as u64)
                    .field("pending", self.stats.pending())
                    .field("enqueued", self.stats.enqueued.get())
                    .field("applied", self.stats.applied.get())
                    .field("rejected", self.stats.rejected.get())
                    .field("refreshes", self.stats.refreshes.get())
                    .field("snapshots_written", self.stats.snapshots_written.get())
                    .field("deduped", self.stats.deduped.get())
                    .field("overloaded", self.stats.overloaded.get())
                    // Always-on freshness readout: how old the published
                    // snapshot is right now (no obs env flag required).
                    .field("snapshot_staleness_ms", self.cell.staleness_ms());
                if let Some(wal) = &self.wal {
                    resp = resp
                        .field("wal", true)
                        .field("wal_fsync", wal.fsync_policy().as_str())
                        .field("wal_appends", wal.appended())
                        .field("wal_append_errors", wal.append_errors())
                        .field("wal_fsyncs", wal.fsyncs())
                        .field("wal_rotations", wal.rotations())
                        .field("wal_replayed", wal.recovery().replayed)
                        .field("wal_gen", wal.recovery().gen);
                } else {
                    resp = resp.field("wal", false);
                }
                (resp.build(), false)
            }
            Request::GetEmbedding { node } => {
                if self.overloaded() {
                    return self.shed_read();
                }
                let snap = reader.current();
                match snap.embedding(node) {
                    Some(row) => {
                        let vec: Vec<Value> = row.iter().map(|&x| Value::F64(x as f64)).collect();
                        (
                            Response::ok()
                                .field("node", node)
                                .field("version", snap.version)
                                .field("embedding", Value::Array(vec))
                                .build(),
                            false,
                        )
                    }
                    None => (
                        Response::err(format!(
                            "node {node} out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::TopK { node, k, op, filter, mode, probes } => {
                if self.overloaded() {
                    return self.shed_read();
                }
                let snap = reader.current();
                let answered = match mode {
                    protocol::TopKMode::Exact => {
                        snap.topk_filtered(node, k, op, filter).map(|hits| (hits, None))
                    }
                    protocol::TopKMode::Ann => {
                        snap.topk_ann(node, k, op, filter, probes).map(|r| {
                            self.stats.ann_queries.inc();
                            self.stats.ann_candidates.record(r.candidates as u64);
                            if r.fallback {
                                self.stats.ann_fallbacks.inc();
                            }
                            (r.hits, Some(r.fallback))
                        })
                    }
                };
                match answered {
                    Some((hits, fallback)) => {
                        let items: Vec<Value> = hits
                            .into_iter()
                            .map(|(v, s)| {
                                Value::Object(vec![
                                    ("node".to_string(), Value::U64(v as u64)),
                                    ("score".to_string(), Value::F64(s)),
                                ])
                            })
                            .collect();
                        let mut resp = Response::ok()
                            .field("node", node)
                            .field("op", op_name(op))
                            .field("mode", mode.as_str())
                            .field("version", snap.version)
                            .field("results", Value::Array(items));
                        if let Some(fb) = fallback {
                            resp = resp.field("fallback", fb);
                        }
                        (resp.build(), false)
                    }
                    None => (
                        Response::err(format!(
                            "node {node} out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::ScoreLink { u, v, op } => {
                if self.overloaded() {
                    return self.shed_read();
                }
                let snap = reader.current();
                match snap.score(u, v, op) {
                    Some(s) => (
                        Response::ok()
                            .field("u", u)
                            .field("v", v)
                            .field("op", op_name(op))
                            .field("version", snap.version)
                            .field("score", s)
                            .build(),
                        false,
                    ),
                    None => (
                        Response::err(format!(
                            "node pair ({u}, {v}) out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::AddEdge { u, v, ref write_id }
            | Request::RemoveEdge { u, v, ref write_id } => {
                let n = reader.current().num_nodes();
                if u as usize >= n || v as usize >= n {
                    return (
                        Response::err(format!("node pair ({u}, {v}) out of range (0..{n})")),
                        false,
                    );
                }
                if u == v {
                    return (Response::err("self loops are not allowed"), false);
                }
                // A retry of an already-acked write: answer success without
                // re-applying (the original ack was lost, not the write).
                if let Some(wid) = write_id {
                    let table = self.dedup.lock().expect("dedup table poisoned");
                    if table.already_acked(wid) {
                        drop(table);
                        self.stats.deduped.inc();
                        return (
                            Response::ok().field("queued", true).field("deduped", true).build(),
                            false,
                        );
                    }
                }
                let event = match &req {
                    Request::AddEdge { .. } => EdgeEvent::Add(u, v),
                    _ => EdgeEvent::Remove(u, v),
                };
                // The write's observability context rides the in-memory
                // queue only (never the on-disk WAL format — replay stays
                // bit-identical): the trainer closes the write-to-visibility
                // measurement when the edge's effect lands in a published
                // snapshot.
                let wctx = WriteCtx::at_enqueue(span_ctx);
                // `Some(seq)` when WAL-logged, `None` when queued directly.
                let queued: Option<u64> = match &self.wal {
                    Some(wal) => {
                        let t0 =
                            if seqge_obs::timing_enabled() { Some(Instant::now()) } else { None };
                        let appended = wal.append_then(event, &self.fault, |seq| {
                            self.trainer_tx.send(TrainerMsg::Event(seq, event, wctx.clone()))
                        });
                        if let Some(t0) = t0 {
                            self.stats
                                .wal_append_ns
                                .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        }
                        match appended {
                            Ok(seq) => Some(seq),
                            Err(e) if e.kind() == ErrorKind::BrokenPipe => {
                                return (Response::err("trainer is shut down"), true);
                            }
                            Err(e) => {
                                self.stats.wal_append_errors.set_to(wal.append_errors());
                                return (Response::err(format!("wal append failed: {e}")), false);
                            }
                        }
                    }
                    None => match self.trainer_tx.send(TrainerMsg::Event(0, event, wctx)) {
                        Ok(()) => None,
                        Err(_) => return (Response::err("trainer is shut down"), true),
                    },
                };
                // Only now — after the event is durably logged and queued —
                // does the write count as acked for dedup purposes. A
                // failed append above must leave the retry replayable.
                if let Some(wid) = write_id {
                    self.dedup.lock().expect("dedup table poisoned").record(wid);
                }
                self.stats.enqueued.inc();
                self.stats.update_backlog();
                let mut resp =
                    Response::ok().field("queued", true).field("pending", self.stats.pending());
                if let Some(seq) = queued {
                    resp = resp.field("seq", seq);
                }
                (resp.build(), false)
            }
            Request::Flush => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Flush(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(version) => (Response::ok().field("version", version).build(), false),
                    Err(_) => (Response::err("flush timed out"), false),
                }
            }
            Request::Snapshot => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Snapshot(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(Ok((model, graph))) => (
                        Response::ok()
                            .field("model", model.display().to_string())
                            .field("graph", graph.display().to_string())
                            .build(),
                        false,
                    ),
                    Ok(Err(e)) => (Response::err(e), false),
                    Err(_) => (Response::err("snapshot timed out"), false),
                }
            }
            Request::Restore => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Restore(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(Ok(version)) => (Response::ok().field("version", version).build(), false),
                    Ok(Err(e)) => (Response::err(e), false),
                    Err(_) => (Response::err("restore timed out"), false),
                }
            }
            Request::Metrics { format } => {
                if let Some(wal) = &self.wal {
                    self.stats.sync_wal(wal);
                }
                self.stats.sync_faults(&self.fault);
                let regs: [&Registry; 2] = [self.registry.as_ref(), Registry::global()];
                let body = match format {
                    MetricsFormat::Prometheus => export::prometheus(&regs),
                    MetricsFormat::Json => export::dump_json(&regs),
                };
                (Response::ok().field("format", format.as_str()).field("body", body).build(), false)
            }
            Request::Trace { after } => {
                let (spans, next) = seqge_obs::trace::snapshot_since(after);
                let items: Vec<Value> = spans.iter().map(span_value).collect();
                (
                    Response::ok()
                        .field("spans", Value::Array(items))
                        .field("next", next)
                        .field("sample_every", seqge_obs::trace::sample_every() as u64)
                        .field("pid", std::process::id() as u64)
                        .build(),
                    false,
                )
            }
            Request::Flightrec => {
                let doc = seqge_obs::flightrec::document("serve");
                // The document is known-valid JSON; embed it structurally so
                // clients get an object, not a double-encoded string.
                let body =
                    serde_json::from_str::<Value>(&doc).unwrap_or_else(|_| Value::Str(doc.clone()));
                (Response::ok().field("body", body).build(), false)
            }
            Request::Halo { node } => {
                let Some(store) = &self.halo else {
                    return (
                        Response::err("halo sync is not enabled (not running as a cluster shard)"),
                        false,
                    );
                };
                match node {
                    None => {
                        let mut resp = Response::ok()
                            .field("vertices", store.len() as u64)
                            .field("max_version", store.max_version())
                            .field(
                                "applied",
                                store.applied.load(std::sync::atomic::Ordering::Relaxed),
                            )
                            .field(
                                "deduped",
                                store.deduped.load(std::sync::atomic::Ordering::Relaxed),
                            );
                        if let Some(ms) = store.staleness_ms() {
                            resp = resp.field("staleness_ms", ms);
                        }
                        (resp.build(), false)
                    }
                    Some(v) => match store.row(v) {
                        Some((version, row)) => {
                            let vec: Vec<Value> =
                                row.iter().map(|&x| Value::F64(x as f64)).collect();
                            (
                                Response::ok()
                                    .field("node", v)
                                    .field("version", version)
                                    .field("embedding", Value::Array(vec))
                                    .build(),
                                false,
                            )
                        }
                        None => (Response::err(format!("no halo row for node {v}")), false),
                    },
                }
            }
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                (Response::ok().field("shutting_down", true).build(), true)
            }
        }
    }
}
