//! The TCP front end: accept loop, worker thread pool, request dispatch.
//!
//! Pure `std` (no async runtime): a nonblocking acceptor feeds accepted
//! connections into a `Mutex<VecDeque>`/`Condvar` work queue drained by a
//! fixed pool of worker threads. Each worker handles one connection at a
//! time, reading LF-delimited JSON requests with a short read timeout so it
//! can notice shutdown, answering read-plane queries from its own
//! [`SnapshotReader`] cache (lock-free in steady state) and forwarding
//! write-plane commands to the trainer thread.

use crate::protocol::{self, op_name, MetricsFormat, Request, Response, MAX_LINE_BYTES};
use crate::snapshot::{EmbeddingSnapshot, SnapshotCell, SnapshotReader};
use crate::trainer::{ServeStats, Trainer, TrainerConfig, TrainerMsg};
use seqge_core::{IncrementalTrainer, OsElmSkipGram, TrainConfig};
use seqge_graph::{EdgeEvent, Graph};
use seqge_obs::{export, Counter, Histogram, Registry};
use seqge_sampling::UpdatePolicy;
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server-side configuration (trainer knobs ride along in [`TrainerConfig`]).
pub struct ServeConfig {
    /// Worker threads answering queries (≥ 1).
    pub workers: usize,
    /// Trainer-side knobs: batching, resample policy, snapshot paths.
    pub trainer: TrainerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4, trainer: TrainerConfig::default() }
    }
}

impl ServeConfig {
    /// Points `snapshot`/`restore` (and the final shutdown snapshot) at
    /// `dir/model.sge` + `dir/graph.edges`, creating `dir` if needed.
    pub fn with_snapshot_dir(mut self, dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        self.trainer.snapshot_model = Some(dir.join("model.sge"));
        self.trainer.snapshot_graph = Some(dir.join("graph.edges"));
        Ok(self)
    }
}

/// Boots a cold model: fresh OS-ELM weights, one bootstrap training pass
/// over `graph` (the "all" protocol), ready to ingest.
pub fn boot_cold(
    graph: &Graph,
    cfg: &TrainConfig,
    ocfg: seqge_core::OsElmConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> (OsElmSkipGram, IncrementalTrainer) {
    let mut model = OsElmSkipGram::new(graph.num_nodes(), ocfg);
    let mut inc = IncrementalTrainer::new(graph.num_nodes(), cfg, policy, seed);
    inc.bootstrap(graph, &mut model);
    (model, inc)
}

/// Restores a previously snapshotted server: the model and graph come back
/// bit-identical from disk and **no retraining happens** — the incremental
/// trainer starts with an empty corpus and rebuilds its negative table from
/// the first post-restore walk.
pub fn boot_restore(
    dir: &Path,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> io::Result<(Graph, OsElmSkipGram, IncrementalTrainer)> {
    let model = seqge_core::persist::load_oselm(dir.join("model.sge"))?;
    let graph = seqge_graph::io::load_graph(dir.join("graph.edges"))
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    if model.beta_t().rows() != graph.num_nodes() {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "snapshot mismatch: model covers {} nodes, graph has {}",
                model.beta_t().rows(),
                graph.num_nodes()
            ),
        ));
    }
    let inc = IncrementalTrainer::new(graph.num_nodes(), cfg, policy, seed);
    Ok((graph, model, inc))
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads are detached).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    registry: Arc<Registry>,
    cell: Arc<SnapshotCell>,
    trainer_tx: Sender<TrainerMsg>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (port is concrete even when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag; external signal handlers set this to request a
    /// graceful shutdown (then call [`ServerHandle::shutdown`] to wait).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Shared telemetry counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.stats.clone()
    }

    /// This server's metrics registry (the `metrics` op merges it with
    /// [`Registry::global`]).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// The snapshot cell (in-process clients can query without TCP).
    pub fn cell(&self) -> Arc<SnapshotCell> {
        self.cell.clone()
    }

    /// Blocks until the stop flag is set (by SIGINT, a `shutdown` command,
    /// or another thread), then tears down gracefully.
    pub fn wait(self) -> io::Result<()> {
        while !self.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }

    /// Graceful shutdown: stop accepting, drain the in-flight training
    /// batch, write a final snapshot (if configured), join every thread.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        let (ack_tx, ack_rx) = channel();
        // The trainer may already be gone if every sender dropped; both
        // outcomes mean "drained".
        if self.trainer_tx.send(TrainerMsg::Shutdown(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(30));
        }
        drop(self.trainer_tx);
        for t in self.threads {
            t.join().map_err(|_| io::Error::other("server thread panicked"))?;
        }
        Ok(())
    }
}

/// Starts the server on `addr` (use port 0 for an ephemeral port) and
/// returns immediately; all work happens on background threads.
pub fn start(
    addr: &str,
    graph: Graph,
    model: OsElmSkipGram,
    inc: IncrementalTrainer,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    assert!(config.workers >= 1, "need at least one worker");
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Per-server registry: concurrent servers in one process (tests) keep
    // isolated request series; library-level series stay in the global
    // registry and are merged at export time.
    let registry = Arc::new(Registry::new());
    let stats = Arc::new(ServeStats::new(&registry));
    let started = Instant::now();
    let boot = EmbeddingSnapshot {
        version: 0,
        emb: seqge_core::model::EmbeddingModel::embedding(&model),
        num_edges: graph.num_edges(),
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
    };
    let cell = Arc::new(SnapshotCell::new(boot));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::<TrainerMsg>();

    let mut threads = Vec::new();

    // Trainer thread — sole owner of graph/model/incremental state.
    let trainer = Trainer::new(graph, model, inc, cell.clone(), stats.clone(), config.trainer);
    threads.push(
        thread::Builder::new().name("seqge-trainer".to_string()).spawn(move || trainer.run(rx))?,
    );

    // Work queue of accepted connections.
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));

    for i in 0..config.workers {
        let ctx = WorkerCtx {
            queue: queue.clone(),
            cell: cell.clone(),
            stats: stats.clone(),
            registry: registry.clone(),
            ops: OpMetrics::new(&registry),
            started,
            stop: stop.clone(),
            trainer_tx: tx.clone(),
        };
        threads.push(
            thread::Builder::new().name(format!("seqge-worker-{i}")).spawn(move || ctx.run())?,
        );
    }

    // Acceptor.
    {
        let queue = queue.clone();
        let stop = stop.clone();
        threads.push(thread::Builder::new().name("seqge-accept".to_string()).spawn(move || {
            loop {
                if stop.load(Ordering::SeqCst) {
                    // Wake any workers parked on the condvar so they can exit.
                    queue.1.notify_all();
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let mut q = queue.0.lock().expect("conn queue poisoned");
                        q.push_back(stream);
                        queue.1.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(20)),
                }
            }
        })?);
    }

    Ok(ServerHandle { addr, stop, stats, registry, cell, trainer_tx: tx, threads })
}

/// Every wire command, for pre-registering per-op request series.
const OP_NAMES: [&str; 12] = [
    "ping",
    "stats",
    "get_embedding",
    "topk",
    "score_link",
    "add_edge",
    "remove_edge",
    "flush",
    "snapshot",
    "restore",
    "metrics",
    "shutdown",
];

/// Per-op request telemetry handles, resolved once per worker so the
/// dispatch path never takes the registry mutex.
struct OpMetrics {
    ops: Vec<(&'static str, Arc<Histogram>, Arc<Counter>)>,
    protocol_errors: Arc<Counter>,
}

impl OpMetrics {
    fn new(registry: &Registry) -> Self {
        let ops = OP_NAMES
            .iter()
            .map(|&op| {
                (
                    op,
                    registry.histogram_with("seqge_serve_request_latency_ns", &[("op", op)]),
                    registry.counter_with("seqge_serve_requests_total", &[("op", op)]),
                )
            })
            .collect();
        OpMetrics { ops, protocol_errors: registry.counter("seqge_serve_protocol_errors_total") }
    }

    fn get(&self, op: &str) -> Option<&(&'static str, Arc<Histogram>, Arc<Counter>)> {
        self.ops.iter().find(|(name, _, _)| *name == op)
    }
}

struct WorkerCtx {
    queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    registry: Arc<Registry>,
    ops: OpMetrics,
    started: Instant,
    stop: Arc<AtomicBool>,
    trainer_tx: Sender<TrainerMsg>,
}

impl WorkerCtx {
    fn run(self) {
        loop {
            let conn = {
                let guard = self.queue.0.lock().expect("conn queue poisoned");
                let (mut guard, _) = self
                    .queue
                    .1
                    .wait_timeout_while(guard, Duration::from_millis(100), |q| q.is_empty())
                    .expect("conn queue poisoned");
                guard.pop_front()
            };
            if let Some(stream) = conn {
                let _ = self.handle_connection(stream);
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// Serves one connection until EOF, protocol violation, or shutdown.
    fn handle_connection(&self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_nodelay(true).ok();
        let mut reader = SnapshotReader::new(self.cell.clone());
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // EOF
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            pending.extend_from_slice(&chunk[..n]);
            // Process every complete line in the buffer.
            while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..nl]);
                let (response, close) = self.dispatch(text.trim(), &mut reader);
                stream.write_all(response.as_bytes())?;
                stream.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
            }
            // A line still growing past the cap is a protocol violation:
            // answer once and drop the connection.
            if pending.len() > MAX_LINE_BYTES {
                let msg = Response::err(format!("line exceeds {MAX_LINE_BYTES} bytes"));
                stream.write_all(msg.as_bytes())?;
                stream.write_all(b"\n")?;
                return Ok(());
            }
        }
    }

    fn dispatch(&self, line: &str, reader: &mut SnapshotReader) -> (String, bool) {
        if line.is_empty() {
            self.ops.protocol_errors.inc();
            return (Response::err("empty request line"), false);
        }
        let req = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.ops.protocol_errors.inc();
                return (Response::err(e), false);
            }
        };
        let op = req.cmd_name();
        // The clock reads are gated like spans; the request counter is
        // always live (it backs throughput accounting).
        let t0 = if seqge_obs::timing_enabled() { Some(Instant::now()) } else { None };
        let out = self.handle_request(req, reader);
        if let Some((_, latency, count)) = self.ops.get(op) {
            count.inc();
            if let Some(t0) = t0 {
                latency.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
        }
        out
    }

    fn handle_request(&self, req: Request, reader: &mut SnapshotReader) -> (String, bool) {
        match req {
            Request::Ping => (Response::ok().field("pong", true).build(), false),
            Request::Stats => {
                let snap = reader.current();
                let resp = Response::ok()
                    .field("version", snap.version)
                    .field("nodes", snap.num_nodes())
                    .field("edges", snap.num_edges)
                    .field("dim", snap.dim())
                    .field("walks_trained", snap.walks_trained)
                    .field("edges_inserted", snap.edges_inserted)
                    .field("edges_removed", snap.edges_removed)
                    .field("snapshot_version", self.cell.version())
                    .field("uptime_ms", self.started.elapsed().as_millis() as u64)
                    .field("pending", self.stats.pending())
                    .field("enqueued", self.stats.enqueued.get())
                    .field("applied", self.stats.applied.get())
                    .field("rejected", self.stats.rejected.get())
                    .field("refreshes", self.stats.refreshes.get())
                    .field("snapshots_written", self.stats.snapshots_written.get())
                    .build();
                (resp, false)
            }
            Request::GetEmbedding { node } => {
                let snap = reader.current();
                match snap.embedding(node) {
                    Some(row) => {
                        let vec: Vec<Value> = row.iter().map(|&x| Value::F64(x as f64)).collect();
                        (
                            Response::ok()
                                .field("node", node)
                                .field("version", snap.version)
                                .field("embedding", Value::Array(vec))
                                .build(),
                            false,
                        )
                    }
                    None => (
                        Response::err(format!(
                            "node {node} out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::TopK { node, k, op } => {
                let snap = reader.current();
                match snap.topk(node, k, op) {
                    Some(hits) => {
                        let items: Vec<Value> = hits
                            .into_iter()
                            .map(|(v, s)| {
                                Value::Object(vec![
                                    ("node".to_string(), Value::U64(v as u64)),
                                    ("score".to_string(), Value::F64(s)),
                                ])
                            })
                            .collect();
                        (
                            Response::ok()
                                .field("node", node)
                                .field("op", op_name(op))
                                .field("version", snap.version)
                                .field("results", Value::Array(items))
                                .build(),
                            false,
                        )
                    }
                    None => (
                        Response::err(format!(
                            "node {node} out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::ScoreLink { u, v, op } => {
                let snap = reader.current();
                match snap.score(u, v, op) {
                    Some(s) => (
                        Response::ok()
                            .field("u", u)
                            .field("v", v)
                            .field("op", op_name(op))
                            .field("version", snap.version)
                            .field("score", s)
                            .build(),
                        false,
                    ),
                    None => (
                        Response::err(format!(
                            "node pair ({u}, {v}) out of range (0..{})",
                            snap.num_nodes()
                        )),
                        false,
                    ),
                }
            }
            Request::AddEdge { u, v } | Request::RemoveEdge { u, v } => {
                let n = reader.current().num_nodes();
                if u as usize >= n || v as usize >= n {
                    return (
                        Response::err(format!("node pair ({u}, {v}) out of range (0..{n})")),
                        false,
                    );
                }
                if u == v {
                    return (Response::err("self loops are not allowed"), false);
                }
                let event = match req {
                    Request::AddEdge { .. } => EdgeEvent::Add(u, v),
                    _ => EdgeEvent::Remove(u, v),
                };
                match self.trainer_tx.send(TrainerMsg::Event(event)) {
                    Ok(()) => {
                        self.stats.enqueued.inc();
                        self.stats.update_backlog();
                        (
                            Response::ok()
                                .field("queued", true)
                                .field("pending", self.stats.pending())
                                .build(),
                            false,
                        )
                    }
                    Err(_) => (Response::err("trainer is shut down"), true),
                }
            }
            Request::Flush => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Flush(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(version) => (Response::ok().field("version", version).build(), false),
                    Err(_) => (Response::err("flush timed out"), false),
                }
            }
            Request::Snapshot => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Snapshot(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(Ok((model, graph))) => (
                        Response::ok()
                            .field("model", model.display().to_string())
                            .field("graph", graph.display().to_string())
                            .build(),
                        false,
                    ),
                    Ok(Err(e)) => (Response::err(e), false),
                    Err(_) => (Response::err("snapshot timed out"), false),
                }
            }
            Request::Restore => {
                let (ack_tx, ack_rx) = channel();
                if self.trainer_tx.send(TrainerMsg::Restore(ack_tx)).is_err() {
                    return (Response::err("trainer is shut down"), true);
                }
                match ack_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(Ok(version)) => (Response::ok().field("version", version).build(), false),
                    Ok(Err(e)) => (Response::err(e), false),
                    Err(_) => (Response::err("restore timed out"), false),
                }
            }
            Request::Metrics { format } => {
                let regs: [&Registry; 2] = [self.registry.as_ref(), Registry::global()];
                let body = match format {
                    MetricsFormat::Prometheus => export::prometheus(&regs),
                    MetricsFormat::Json => export::dump_json(&regs),
                };
                (Response::ok().field("format", format.as_str()).field("body", body).build(), false)
            }
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                (Response::ok().field("shutting_down", true).build(), true)
            }
        }
    }
}
