//! The write plane: a dedicated trainer thread that drains edge events into
//! incremental training updates and publishes fresh embedding snapshots.
//!
//! One thread owns the graph and the training engine (a
//! [`seqge_backend::TrainBackend`]: float OS-ELM or the fixed-point fpga-sim
//! kernel); everything else talks to it through an MPSC channel. Events are
//! batched opportunistically — whatever has queued up since the last
//! training step is drained in one go (up to `batch_max`), then a snapshot
//! is published, so query staleness is bounded by one batch rather than one
//! connection's burst. Publication is also where a backend's deferred work
//! lands: fpga-sim re-dequantizes only the β rows dirtied since the last
//! publish, refreshes its cycle-model throughput plan, and re-measures the
//! float-shadow deviation.
//!
//! With a WAL attached ([`Trainer::attach_wal`]), events arrive already
//! logged (the worker appends before sending, holding the log lock across
//! both, so log order equals apply order); the trainer tracks the highest
//! applied sequence number, fsyncs the log at every batch boundary under
//! the `batch` policy, and turns snapshots into atomic generation
//! rotations via [`Wal::commit_snapshot`].

use crate::fault::{FaultInjector, FaultPoint};
use crate::snapshot::{EmbeddingSnapshot, SnapshotCell};
use crate::wal::Wal;
use seqge_ann::{AnnBuilder, AnnConfig, SyncReport};
use seqge_backend::TrainBackend;
use seqge_graph::{io as graph_io, EdgeEvent, Graph};
use seqge_obs::{Counter, Gauge, Histogram, Registry, TraceCtx};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

/// Batch-size buckets splitting the write-to-visibility distribution: a
/// write published alone has a very different freshness profile than one
/// riding a 200-event batch, and averaging them hides the tail.
pub const FRESHNESS_BATCH_BUCKETS: [&str; 4] = ["1", "2-16", "17-64", "65+"];

/// The `batch` label value for a publish folding `n` writes.
pub fn batch_bucket(n: usize) -> &'static str {
    match n {
        0..=1 => FRESHNESS_BATCH_BUCKETS[0],
        2..=16 => FRESHNESS_BATCH_BUCKETS[1],
        17..=64 => FRESHNESS_BATCH_BUCKETS[2],
        _ => FRESHNESS_BATCH_BUCKETS[3],
    }
}

/// Observability context riding one write through the trainer queue: the
/// worker stamps it at enqueue, the trainer closes it when the write's
/// effect lands in a published snapshot. Never serialized into the WAL —
/// replayed events carry [`WriteCtx::none`] and the on-disk format stays
/// bit-identical.
#[derive(Clone, Default)]
pub struct WriteCtx {
    /// Enqueue instant; `None` when timing is off (the always-on freshness
    /// path then keeps only the counter + staleness gauge).
    pub enqueued: Option<Instant>,
    /// The request span's context; the trainer parents the
    /// `write.visible` span under it.
    pub trace: Option<TraceCtx>,
}

impl WriteCtx {
    /// Context for a write entering the queue right now.
    pub fn at_enqueue(trace: Option<TraceCtx>) -> Self {
        let enqueued = if seqge_obs::timing_enabled() { Some(Instant::now()) } else { None };
        WriteCtx { enqueued, trace }
    }

    /// Context-free marker for replayed or synthetic events.
    pub fn none() -> Self {
        WriteCtx::default()
    }
}

/// Counters shared between the trainer thread and the query plane (the
/// `stats` command reads them lock-free). Each field is a handle into the
/// server's [`Registry`], so the same numbers surface through the `metrics`
/// op without double bookkeeping.
pub struct ServeStats {
    /// Events accepted onto the queue by the server
    /// (`seqge_serve_events_enqueued_total`).
    pub enqueued: Arc<Counter>,
    /// Events applied to the graph and trained
    /// (`seqge_serve_events_applied_total`).
    pub applied: Arc<Counter>,
    /// Events the graph rejected (duplicate add, missing remove, …;
    /// `seqge_serve_events_rejected_total`).
    pub rejected: Arc<Counter>,
    /// Walks trained since boot (bootstrap + incremental + refreshes;
    /// `seqge_serve_walks_trained_total`).
    pub walks_trained: Arc<Counter>,
    /// Full walk-corpus resamples performed by the update policy
    /// (`seqge_serve_refreshes_total`).
    pub refreshes: Arc<Counter>,
    /// Snapshots written to disk (`seqge_serve_snapshots_written_total`).
    pub snapshots_written: Arc<Counter>,
    /// Events queued but not yet applied or rejected
    /// (`seqge_serve_trainer_backlog`).
    pub backlog: Arc<Gauge>,
    /// Events folded into the model per snapshot publication
    /// (`seqge_serve_ingest_batch_size`).
    pub ingest_batch: Arc<Histogram>,
    /// Wall time of each on-disk snapshot write
    /// (`seqge_serve_snapshot_write_ns`).
    pub snapshot_ns: Arc<Histogram>,
    /// WAL records appended (`seqge_serve_wal_appends_total`).
    pub wal_appends: Arc<Counter>,
    /// WAL appends that failed, including injected faults
    /// (`seqge_serve_wal_append_errors_total`).
    pub wal_append_errors: Arc<Counter>,
    /// WAL fsyncs issued (`seqge_serve_wal_fsyncs_total`).
    pub wal_fsyncs: Arc<Counter>,
    /// WAL segment rotations (`seqge_serve_wal_rotations_total`).
    pub wal_rotations: Arc<Counter>,
    /// Events replayed from the WAL at boot
    /// (`seqge_serve_wal_replayed_total`).
    pub wal_replayed: Arc<Counter>,
    /// Wall time of one WAL append, including policy fsync
    /// (`seqge_serve_wal_append_ns`).
    pub wal_append_ns: Arc<Histogram>,
    /// Read-plane requests shed with `overloaded`
    /// (`seqge_serve_overloaded_total`).
    pub overloaded: Arc<Counter>,
    /// Retried writes answered from the dedup table instead of re-applied
    /// (`seqge_serve_deduped_total`).
    pub deduped: Arc<Counter>,
    /// Connections dropped by the acceptor because the worker queue was
    /// full (`seqge_serve_conn_shed_total`).
    pub conn_shed: Arc<Counter>,
    /// Injected faults that actually fired, labelled by point
    /// (`seqge_serve_fault_injected_total{point=...}`).
    pub faults: Vec<(FaultPoint, Arc<Counter>)>,
    /// `mode:"ann"` topk queries answered (`seqge_ann_queries_total`).
    pub ann_queries: Arc<Counter>,
    /// ANN queries that fell back to the exact scan — no index, geometry
    /// mismatch, or candidate pool under `k`
    /// (`seqge_ann_fallbacks_total`).
    pub ann_fallbacks: Arc<Counter>,
    /// Candidate-set size per ANN query (`seqge_ann_candidates`).
    pub ann_candidates: Arc<Histogram>,
    /// Wall time of each index sync at snapshot publication
    /// (`seqge_ann_sync_ns`).
    pub ann_sync_ns: Arc<Histogram>,
    /// Vertices re-hashed across all syncs — the incremental invariant is
    /// that this tracks *dirty* vertices, not total republishes × n
    /// (`seqge_ann_rehashed_total`).
    pub ann_rehashed: Arc<Counter>,
    /// Vertices covered by the most recent published index
    /// (`seqge_ann_indexed_points`).
    pub ann_indexed: Arc<Gauge>,
    /// Dirty fraction of the latest republish in parts-per-million
    /// (`seqge_ann_dirty_ppm`).
    pub ann_dirty_ppm: Arc<Gauge>,
    /// Write-to-visibility latency (enqueue → snapshot publication) split
    /// by batch-size bucket (`seqge_freshness_ns{batch=...}`). Recording is
    /// gated on the timing switch like every other clock read.
    pub freshness_ns: Vec<(&'static str, Arc<Histogram>)>,
    /// Writes whose snapshot visibility was confirmed — always on, even
    /// with `SEQGE_OBS=off` (`seqge_freshness_events_total`).
    pub writes_visible: Arc<Counter>,
    /// Age of the snapshot that was just replaced, in ms — i.e. how stale
    /// reads were allowed to get before this publish. Always on
    /// (`seqge_snapshot_staleness_ms`).
    pub staleness_ms: Arc<Gauge>,
    /// Owned-row halo deltas appended to this shard's `halo.log`
    /// (`seqge_serve_halo_written_total`; zero outside cluster mode).
    pub halo_written: Arc<Counter>,
    /// Peer halo deltas folded into the store
    /// (`seqge_serve_halo_applied_total`).
    pub halo_applied: Arc<Counter>,
    /// Peer halo deltas dropped by the `(vertex, version)` dedup
    /// (`seqge_serve_halo_deduped_total`).
    pub halo_deduped: Arc<Counter>,
    /// In-place halo-log truncations (`seqge_serve_halo_rotations_total`).
    pub halo_rotations: Arc<Counter>,
    /// Non-owned vertices currently mirrored
    /// (`seqge_serve_halo_vertices`).
    pub halo_vertices: Arc<Gauge>,
    /// Milliseconds since the halo plane last confirmed sync with every
    /// peer log — a successful poll cycle or an applied delta
    /// (`seqge_serve_halo_staleness_ms`). Bounded near one sync period on
    /// a healthy cluster, idle or not.
    pub halo_staleness_ms: Arc<Gauge>,
    /// Modeled PL cycles accumulated by the backend's cycle model
    /// (`seqge_backend_cycles_total`; zero for backends without one).
    pub backend_cycles: Arc<Counter>,
    /// The cycle planner's predicted sustainable ingest rate at the
    /// configured clock, in edge events/s
    /// (`seqge_backend_predicted_ingest_eps`).
    pub backend_predicted_eps: Arc<Gauge>,
    /// Ingest rate the trainer actually sustained over the last publish
    /// interval, in edge events/s — read next to the prediction to see
    /// capacity headroom (`seqge_backend_measured_ingest_eps`).
    pub backend_measured_eps: Arc<Gauge>,
    /// Fixed-vs-float embedding deviation measured by the backend's shadow
    /// probe at the last publish, in ppm — the paper's Fig. 4 accuracy gap
    /// as a live series (`seqge_backend_deviation`).
    pub backend_deviation: Arc<Gauge>,
}

impl ServeStats {
    /// Registers every serve-plane series in `registry` and returns the
    /// shared handles.
    pub fn new(registry: &Registry) -> Self {
        ServeStats {
            enqueued: registry.counter("seqge_serve_events_enqueued_total"),
            applied: registry.counter("seqge_serve_events_applied_total"),
            rejected: registry.counter("seqge_serve_events_rejected_total"),
            walks_trained: registry.counter("seqge_serve_walks_trained_total"),
            refreshes: registry.counter("seqge_serve_refreshes_total"),
            snapshots_written: registry.counter("seqge_serve_snapshots_written_total"),
            backlog: registry.gauge("seqge_serve_trainer_backlog"),
            ingest_batch: registry.histogram("seqge_serve_ingest_batch_size"),
            snapshot_ns: registry.histogram("seqge_serve_snapshot_write_ns"),
            wal_appends: registry.counter("seqge_serve_wal_appends_total"),
            wal_append_errors: registry.counter("seqge_serve_wal_append_errors_total"),
            wal_fsyncs: registry.counter("seqge_serve_wal_fsyncs_total"),
            wal_rotations: registry.counter("seqge_serve_wal_rotations_total"),
            wal_replayed: registry.counter("seqge_serve_wal_replayed_total"),
            wal_append_ns: registry.histogram("seqge_serve_wal_append_ns"),
            overloaded: registry.counter("seqge_serve_overloaded_total"),
            deduped: registry.counter("seqge_serve_deduped_total"),
            conn_shed: registry.counter("seqge_serve_conn_shed_total"),
            faults: FaultPoint::ALL
                .iter()
                .map(|&p| {
                    (
                        p,
                        registry.counter_with(
                            "seqge_serve_fault_injected_total",
                            &[("point", p.name())],
                        ),
                    )
                })
                .collect(),
            ann_queries: registry.counter("seqge_ann_queries_total"),
            ann_fallbacks: registry.counter("seqge_ann_fallbacks_total"),
            ann_candidates: registry.histogram("seqge_ann_candidates"),
            ann_sync_ns: registry.histogram("seqge_ann_sync_ns"),
            ann_rehashed: registry.counter("seqge_ann_rehashed_total"),
            ann_indexed: registry.gauge("seqge_ann_indexed_points"),
            ann_dirty_ppm: registry.gauge("seqge_ann_dirty_ppm"),
            freshness_ns: FRESHNESS_BATCH_BUCKETS
                .iter()
                .map(|&b| (b, registry.histogram_with("seqge_freshness_ns", &[("batch", b)])))
                .collect(),
            writes_visible: registry.counter("seqge_freshness_events_total"),
            staleness_ms: registry.gauge("seqge_snapshot_staleness_ms"),
            halo_written: registry.counter("seqge_serve_halo_written_total"),
            halo_applied: registry.counter("seqge_serve_halo_applied_total"),
            halo_deduped: registry.counter("seqge_serve_halo_deduped_total"),
            halo_rotations: registry.counter("seqge_serve_halo_rotations_total"),
            halo_vertices: registry.gauge("seqge_serve_halo_vertices"),
            halo_staleness_ms: registry.gauge("seqge_serve_halo_staleness_ms"),
            backend_cycles: registry.counter("seqge_backend_cycles_total"),
            backend_predicted_eps: registry.gauge("seqge_backend_predicted_ingest_eps"),
            backend_measured_eps: registry.gauge("seqge_backend_measured_ingest_eps"),
            backend_deviation: registry.gauge("seqge_backend_deviation"),
        }
    }

    /// Handles for the halo-sync loop (it runs on its own thread and feeds
    /// these same registry series).
    pub fn halo_sync(&self) -> crate::halo::HaloSyncStats {
        crate::halo::HaloSyncStats {
            written: self.halo_written.clone(),
            applied: self.halo_applied.clone(),
            deduped: self.halo_deduped.clone(),
            rotations: self.halo_rotations.clone(),
            vertices: self.halo_vertices.clone(),
            staleness_ms: self.halo_staleness_ms.clone(),
        }
    }

    /// The freshness histogram for a publish folding `n` writes.
    pub fn freshness(&self, n: usize) -> &Histogram {
        let bucket = batch_bucket(n);
        let (_, h) = self
            .freshness_ns
            .iter()
            .find(|(b, _)| *b == bucket)
            .expect("every bucket pre-registered");
        h
    }

    /// Mirrors one [`AnnBuilder::sync`] outcome into the registry.
    pub fn record_ann_sync(&self, rep: &SyncReport) {
        self.ann_sync_ns.record(rep.build_ns);
        self.ann_rehashed.add(rep.rehashed as u64);
        self.ann_indexed.set(rep.total as i64);
        self.ann_dirty_ppm.set(rep.dirty_ppm() as i64);
    }

    /// Events queued but not yet applied or rejected.
    pub fn pending(&self) -> u64 {
        self.enqueued.get().saturating_sub(self.applied.get()).saturating_sub(self.rejected.get())
    }

    /// Refreshes the backlog gauge from the monotonic counters.
    pub fn update_backlog(&self) {
        self.backlog.set(self.pending() as i64);
    }

    /// Mirrors the WAL's internal counters into the registry (the WAL is
    /// created before the registry exists, so it counts in plain atomics).
    pub fn sync_wal(&self, wal: &Wal) {
        self.wal_appends.set_to(wal.appended());
        self.wal_append_errors.set_to(wal.append_errors());
        self.wal_fsyncs.set_to(wal.fsyncs());
        self.wal_rotations.set_to(wal.rotations());
        self.wal_replayed.set_to(wal.recovery().replayed);
    }

    /// Mirrors fired fault counts into the registry.
    pub fn sync_faults(&self, inj: &FaultInjector) {
        for (p, c) in &self.faults {
            c.set_to(inj.fired(*p));
        }
    }
}

/// Messages the trainer thread understands.
pub enum TrainerMsg {
    /// An edge mutation from the write plane, tagged with its WAL sequence
    /// number (0 when the server runs without a WAL) and the observability
    /// context closed at snapshot publication.
    Event(u64, EdgeEvent, WriteCtx),
    /// Barrier: drain everything queued before this message, publish, and
    /// ack with the published version.
    Flush(Sender<u64>),
    /// Persist model + graph; ack with the written paths or an error.
    Snapshot(Sender<Result<(PathBuf, PathBuf), String>>),
    /// Reload model + graph from disk, replacing in-memory state; ack with
    /// the restored version or an error. Unavailable in WAL mode.
    Restore(Sender<Result<u64, String>>),
    /// Drain in-flight events, write a final snapshot (if configured),
    /// publish, ack, and exit the thread.
    Shutdown(Sender<u64>),
}

/// Trainer-side configuration.
pub struct TrainerConfig {
    /// Max events folded into the model between two snapshot publications.
    pub batch_max: usize,
    /// Resample the full walk corpus after this many applied events
    /// (0 = never). Counters the staleness of per-edge walks under heavy
    /// drift — see [`IncrementalTrainer::refresh`].
    pub refresh_every: u64,
    /// Where `snapshot`/`restore` (and the final shutdown snapshot) write
    /// the model; `None` disables persistence commands. Ignored in WAL
    /// mode (generations live in the WAL directory).
    pub snapshot_model: Option<PathBuf>,
    /// Companion path for the graph.
    pub snapshot_graph: Option<PathBuf>,
    /// ANN index maintenance: `Some(cfg)` keeps an LSH index in sync with
    /// every published snapshot (incremental — only dirty rows re-hash);
    /// `None` disables it and `mode:"ann"` queries answer exactly.
    pub ann: Option<AnnConfig>,
    /// Worker threads for walk *generation* during bootstrap and corpus
    /// refreshes (0 = one per core). Per-walk RNG lanes keep the corpus
    /// bit-identical across thread counts; per-event ingest walks stay
    /// sequential regardless (see [`IncrementalTrainer::set_walk_threads`]).
    pub walk_threads: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_max: 256,
            refresh_every: 0,
            snapshot_model: None,
            snapshot_graph: None,
            ann: Some(AnnConfig::default()),
            walk_threads: 0,
        }
    }
}

/// The trainer thread's whole world.
pub struct Trainer {
    graph: Graph,
    backend: Box<dyn TrainBackend>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    cfg: TrainerConfig,
    wal: Option<Arc<Wal>>,
    fault: Arc<FaultInjector>,
    version: u64,
    events_since_refresh: u64,
    /// Highest WAL sequence number consumed (applied *or* rejected — a
    /// rejected event is settled and must not replay either).
    applied_seq: u64,
    /// Incremental ANN index maintainer (`None` when ANN is disabled).
    ann: Option<AnnBuilder>,
    /// Write contexts consumed since the last publish; closed (freshness
    /// histogram + `write.visible` spans) when the next snapshot goes out.
    inflight_writes: Vec<WriteCtx>,
    /// When the current snapshot was published (drives the staleness gauge
    /// and the `stats` op's always-on readout via the cell).
    last_publish: Option<Instant>,
    /// Events applied since the last publish (drives the measured ingest
    /// rate the planner gauges compare against).
    applied_since_publish: u64,
}

impl Trainer {
    /// Builds the trainer and publishes the boot snapshot (version 0).
    pub fn new(
        graph: Graph,
        mut backend: Box<dyn TrainBackend>,
        cell: Arc<SnapshotCell>,
        stats: Arc<ServeStats>,
        cfg: TrainerConfig,
    ) -> Self {
        backend.set_walk_threads(cfg.walk_threads);
        let ann = cfg.ann.map(AnnBuilder::new);
        let mut t = Trainer {
            graph,
            backend,
            cell,
            stats,
            cfg,
            wal: None,
            fault: Arc::new(FaultInjector::disabled()),
            version: 0,
            events_since_refresh: 0,
            applied_seq: 0,
            ann,
            inflight_writes: Vec::new(),
            last_publish: None,
            applied_since_publish: 0,
        };
        t.sync_stats();
        t.publish();
        t
    }

    /// Attaches the WAL and fault injector, resuming the sequence/refresh
    /// cursors from the recovery report. Must be called before `run`.
    pub fn attach_wal(&mut self, wal: Option<Arc<Wal>>, fault: Arc<FaultInjector>) {
        if let Some(w) = &wal {
            let rec = w.recovery();
            self.applied_seq = rec.next_seq.saturating_sub(1);
            self.events_since_refresh = rec.since_refresh;
            self.stats.sync_wal(w);
        }
        self.wal = wal;
        self.fault = fault;
    }

    fn sync_stats(&self) {
        // `set_to` keeps the counter monotone even though the trainer
        // publishes an absolute count.
        self.stats.walks_trained.set_to(self.backend.outcome().walks_trained as u64);
    }

    fn publish(&mut self) {
        let out = self.backend.outcome();
        // `publish_view` is where a backend's deferred work lands (fpga-sim
        // re-dequantizes dirty rows and re-measures the shadow deviation).
        let emb = self.backend.publish_view();
        if let Some(plan) = self.backend.planner() {
            self.stats.backend_cycles.set_to(plan.cycles_total);
            self.stats.backend_predicted_eps.set(plan.predicted_ingest_eps as i64);
        }
        if let Some(ppm) = self.backend.deviation_ppm() {
            self.stats.backend_deviation.set(ppm);
        }
        // Sync the ANN index against the matrix we are about to publish:
        // index and embeddings travel in the same `Arc`, so a reader can
        // never observe one without the other.
        let ann = self.ann.as_mut().map(|b| {
            let (index, rep) = b.sync(&emb);
            self.stats.record_ann_sync(&rep);
            index
        });
        self.cell.publish(EmbeddingSnapshot {
            version: self.version,
            emb,
            num_edges: self.graph.num_edges(),
            walks_trained: out.walks_trained,
            edges_inserted: out.edges_inserted,
            edges_removed: self.backend.edges_removed(),
            ann,
        });
        self.version += 1;
        self.close_freshness();
    }

    /// The always-on freshness bookkeeping at snapshot publication: set the
    /// staleness gauge (age of the snapshot just replaced), count newly
    /// visible writes, and — when timing is on — record write-to-visibility
    /// latencies into the batch-bucketed histogram and close each sampled
    /// write's `write.visible` span.
    fn close_freshness(&mut self) {
        // One clock read per publish (per *batch*, not per event), so this
        // stays within the "cheap always-on" budget with SEQGE_OBS=off.
        let now = Instant::now();
        if let Some(prev) = self.last_publish {
            let dt = now.duration_since(prev);
            self.stats.staleness_ms.set(dt.as_millis() as i64);
            if self.applied_since_publish > 0 && !dt.is_zero() {
                let eps = self.applied_since_publish as f64 / dt.as_secs_f64();
                self.stats.backend_measured_eps.set(eps as i64);
            }
        }
        self.applied_since_publish = 0;
        self.last_publish = Some(now);
        self.cell.mark_published(now);
        if self.inflight_writes.is_empty() {
            return;
        }
        let batch = self.inflight_writes.len();
        let bucket = batch_bucket(batch);
        let hist = self.stats.freshness(batch);
        for w in std::mem::take(&mut self.inflight_writes) {
            self.stats.writes_visible.inc();
            if let Some(t) = w.enqueued {
                let ns = now.saturating_duration_since(t).as_nanos() as u64;
                hist.record(ns);
                if let Some(ctx) = w.trace {
                    seqge_obs::trace::record_closed(
                        "write.visible",
                        ctx,
                        t,
                        ns,
                        vec![
                            ("batch".to_string(), bucket.to_string()),
                            ("version".to_string(), (self.version - 1).to_string()),
                        ],
                    );
                }
            }
        }
    }

    fn apply(&mut self, seq: u64, event: EdgeEvent) {
        if self.fault.should(FaultPoint::TrainerPanic) {
            panic!("injected trainer panic");
        }
        if self.fault.should(FaultPoint::TrainerStall) {
            std::thread::sleep(self.fault.stall());
        }
        match self.backend.ingest(&mut self.graph, event) {
            Ok(_) => {
                self.stats.applied.inc();
                self.events_since_refresh += 1;
                self.applied_since_publish += 1;
            }
            Err(_) => {
                self.stats.rejected.inc();
            }
        }
        if seq > self.applied_seq {
            self.applied_seq = seq;
        }
        if self.cfg.refresh_every > 0 && self.events_since_refresh >= self.cfg.refresh_every {
            self.backend.refresh(&self.graph);
            self.stats.refreshes.inc();
            self.events_since_refresh = 0;
        }
        self.sync_stats();
        self.stats.update_backlog();
    }

    fn snapshot_paths(&self) -> Result<(PathBuf, PathBuf), String> {
        match (&self.cfg.snapshot_model, &self.cfg.snapshot_graph) {
            (Some(m), Some(g)) => Ok((m.clone(), g.clone())),
            _ => Err("server started without --snapshot-dir or --wal-dir".to_string()),
        }
    }

    /// Writes model + graph via temp-file-then-rename so a crash mid-write
    /// never clobbers the previous good snapshot. In WAL mode this is a
    /// generation rotation: the new files plus a rotated segment become
    /// visible atomically through the `meta.json` swap.
    fn write_snapshot(&self) -> Result<(PathBuf, PathBuf), String> {
        let t0 = Instant::now();
        let (model_path, graph_path) = match &self.wal {
            Some(wal) => {
                let (_, m, g) = wal.begin_snapshot();
                (m, g)
            }
            None => self.snapshot_paths()?,
        };
        let mtmp = model_path.with_extension("tmp");
        let gtmp = graph_path.with_extension("tmp");
        self.backend.save_state(&mtmp).map_err(|e| format!("model snapshot: {e}"))?;
        graph_io::save_graph(&self.graph, &gtmp).map_err(|e| format!("graph snapshot: {e}"))?;
        std::fs::rename(&mtmp, &model_path).map_err(|e| format!("model rename: {e}"))?;
        std::fs::rename(&gtmp, &graph_path).map_err(|e| format!("graph rename: {e}"))?;
        if let Some(wal) = &self.wal {
            wal.commit_snapshot(self.applied_seq, self.events_since_refresh)
                .map_err(|e| format!("wal rotation: {e}"))?;
            self.stats.sync_wal(wal);
        }
        self.stats.snapshots_written.inc();
        self.stats.snapshot_ns.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        Ok((model_path, graph_path))
    }

    fn restore_snapshot(&mut self) -> Result<u64, String> {
        if self.wal.is_some() {
            return Err("restore is unavailable in WAL mode: on-disk state is authoritative; \
                 restart the server to recover"
                .to_string());
        }
        let (model_path, graph_path) = self.snapshot_paths()?;
        let graph = graph_io::load_graph(&graph_path).map_err(|e| format!("graph restore: {e}"))?;
        // Swaps the model weights only — the live walk corpus and negative
        // table survive, matching the pre-refactor restore semantics. The
        // backend refuses (without mutating) on a bad file or node-count
        // mismatch against the restored graph.
        self.backend
            .restore_state(&model_path, graph.num_nodes())
            .map_err(|e| format!("model restore: {e}"))?;
        self.graph = graph;
        self.publish();
        Ok(self.version - 1)
    }

    /// Fsync + counter mirror at a batch boundary. `force` commits
    /// unconditionally (queue drained, flush barrier, shutdown); otherwise
    /// the WAL group-commits on its count/age threshold so a busy trainer
    /// is not stalled by an fsync per batch.
    fn batch_boundary(&self, force: bool) {
        if let Some(wal) = &self.wal {
            let r = if force { wal.commit() } else { wal.batch_commit() };
            if let Err(e) = r {
                seqge_obs::error!("serve", "wal batch fsync failed: {e}");
            }
            self.stats.sync_wal(wal);
        }
        self.stats.sync_faults(&self.fault);
    }

    /// Runs the event loop until [`TrainerMsg::Shutdown`] or every sender
    /// hangs up. Consumes the trainer.
    pub fn run(mut self, rx: Receiver<TrainerMsg>) {
        loop {
            let first = match rx.recv() {
                Ok(m) => m,
                Err(_) => return, // all senders gone: server tore down
            };
            let mut control = None;
            match first {
                TrainerMsg::Event(seq, e, ctx) => {
                    self.apply(seq, e);
                    self.inflight_writes.push(ctx);
                    let mut batched = 1usize;
                    let mut drained = false;
                    // Opportunistic batch: drain whatever queued up while
                    // training, then publish once.
                    while batched < self.cfg.batch_max {
                        match rx.try_recv() {
                            Ok(TrainerMsg::Event(seq, e, ctx)) => {
                                self.apply(seq, e);
                                self.inflight_writes.push(ctx);
                                batched += 1;
                            }
                            Ok(other) => {
                                control = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {
                                drained = true;
                                break;
                            }
                        }
                    }
                    self.publish();
                    self.stats.ingest_batch.record(batched as u64);
                    // Force the fsync when the queue is empty: the next
                    // boundary could be arbitrarily far away.
                    self.batch_boundary(drained);
                }
                other => control = Some(other),
            }
            if let Some(msg) = control {
                match msg {
                    TrainerMsg::Event(..) => unreachable!("events handled above"),
                    TrainerMsg::Flush(ack) => {
                        // Everything sent before the flush is already
                        // applied (single FIFO channel), so just publish.
                        self.publish();
                        self.batch_boundary(true);
                        let _ = ack.send(self.version - 1);
                    }
                    TrainerMsg::Snapshot(ack) => {
                        let _ = ack.send(self.write_snapshot());
                    }
                    TrainerMsg::Restore(ack) => {
                        let _ = ack.send(self.restore_snapshot());
                    }
                    TrainerMsg::Shutdown(ack) => {
                        // Drain in-flight events so nothing queued is lost…
                        while let Ok(msg) = rx.try_recv() {
                            match msg {
                                TrainerMsg::Event(seq, e, ctx) => {
                                    self.apply(seq, e);
                                    self.inflight_writes.push(ctx);
                                }
                                TrainerMsg::Flush(a) => {
                                    let _ = a.send(self.version);
                                }
                                TrainerMsg::Snapshot(a) => {
                                    let _ = a.send(Err("shutting down".to_string()));
                                }
                                TrainerMsg::Restore(a) => {
                                    let _ = a.send(Err("shutting down".to_string()));
                                }
                                TrainerMsg::Shutdown(a) => {
                                    let _ = a.send(self.version);
                                }
                            }
                        }
                        // …then leave a final on-disk snapshot if configured
                        // (in WAL mode: a final generation rotation, so the
                        // next boot replays nothing).
                        if self.wal.is_some() || self.cfg.snapshot_model.is_some() {
                            if let Err(e) = self.write_snapshot() {
                                seqge_obs::error!("serve", "final snapshot failed: {e}");
                            }
                        }
                        self.publish();
                        self.batch_boundary(true);
                        let _ = ack.send(self.version - 1);
                        return;
                    }
                }
            }
        }
    }
}
