//! The write plane: a dedicated trainer thread that drains edge events into
//! incremental OS-ELM updates and publishes fresh embedding snapshots.
//!
//! One thread owns the graph, the model, and the
//! [`seqge_core::IncrementalTrainer`]; everything else talks to it through
//! an MPSC channel. Events are batched opportunistically — whatever has
//! queued up since the last training step is drained in one go (up to
//! `batch_max`), then a snapshot is published, so query staleness is
//! bounded by one batch rather than one connection's burst.

use crate::snapshot::{EmbeddingSnapshot, SnapshotCell};
use seqge_core::model::EmbeddingModel;
use seqge_core::{persist, IncrementalTrainer, OsElmSkipGram};
use seqge_graph::{io as graph_io, EdgeEvent, Graph};
use seqge_obs::{Counter, Gauge, Histogram, Registry};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

/// Counters shared between the trainer thread and the query plane (the
/// `stats` command reads them lock-free). Each field is a handle into the
/// server's [`Registry`], so the same numbers surface through the `metrics`
/// op without double bookkeeping.
pub struct ServeStats {
    /// Events accepted onto the queue by the server
    /// (`seqge_serve_events_enqueued_total`).
    pub enqueued: Arc<Counter>,
    /// Events applied to the graph and trained
    /// (`seqge_serve_events_applied_total`).
    pub applied: Arc<Counter>,
    /// Events the graph rejected (duplicate add, missing remove, …;
    /// `seqge_serve_events_rejected_total`).
    pub rejected: Arc<Counter>,
    /// Walks trained since boot (bootstrap + incremental + refreshes;
    /// `seqge_serve_walks_trained_total`).
    pub walks_trained: Arc<Counter>,
    /// Full walk-corpus resamples performed by the update policy
    /// (`seqge_serve_refreshes_total`).
    pub refreshes: Arc<Counter>,
    /// Snapshots written to disk (`seqge_serve_snapshots_written_total`).
    pub snapshots_written: Arc<Counter>,
    /// Events queued but not yet applied or rejected
    /// (`seqge_serve_trainer_backlog`).
    pub backlog: Arc<Gauge>,
    /// Events folded into the model per snapshot publication
    /// (`seqge_serve_ingest_batch_size`).
    pub ingest_batch: Arc<Histogram>,
    /// Wall time of each on-disk snapshot write
    /// (`seqge_serve_snapshot_write_ns`).
    pub snapshot_ns: Arc<Histogram>,
}

impl ServeStats {
    /// Registers every serve-plane series in `registry` and returns the
    /// shared handles.
    pub fn new(registry: &Registry) -> Self {
        ServeStats {
            enqueued: registry.counter("seqge_serve_events_enqueued_total"),
            applied: registry.counter("seqge_serve_events_applied_total"),
            rejected: registry.counter("seqge_serve_events_rejected_total"),
            walks_trained: registry.counter("seqge_serve_walks_trained_total"),
            refreshes: registry.counter("seqge_serve_refreshes_total"),
            snapshots_written: registry.counter("seqge_serve_snapshots_written_total"),
            backlog: registry.gauge("seqge_serve_trainer_backlog"),
            ingest_batch: registry.histogram("seqge_serve_ingest_batch_size"),
            snapshot_ns: registry.histogram("seqge_serve_snapshot_write_ns"),
        }
    }

    /// Events queued but not yet applied or rejected.
    pub fn pending(&self) -> u64 {
        self.enqueued.get().saturating_sub(self.applied.get()).saturating_sub(self.rejected.get())
    }

    /// Refreshes the backlog gauge from the monotonic counters.
    pub fn update_backlog(&self) {
        self.backlog.set(self.pending() as i64);
    }
}

/// Messages the trainer thread understands.
pub enum TrainerMsg {
    /// An edge mutation from the write plane.
    Event(EdgeEvent),
    /// Barrier: drain everything queued before this message, publish, and
    /// ack with the published version.
    Flush(Sender<u64>),
    /// Persist model + graph; ack with the written paths or an error.
    Snapshot(Sender<Result<(PathBuf, PathBuf), String>>),
    /// Reload model + graph from disk, replacing in-memory state; ack with
    /// the restored version or an error.
    Restore(Sender<Result<u64, String>>),
    /// Drain in-flight events, write a final snapshot (if configured),
    /// publish, ack, and exit the thread.
    Shutdown(Sender<u64>),
}

/// Trainer-side configuration.
pub struct TrainerConfig {
    /// Max events folded into the model between two snapshot publications.
    pub batch_max: usize,
    /// Resample the full walk corpus after this many applied events
    /// (0 = never). Counters the staleness of per-edge walks under heavy
    /// drift — see [`IncrementalTrainer::refresh`].
    pub refresh_every: u64,
    /// Where `snapshot`/`restore` (and the final shutdown snapshot) write
    /// the model; `None` disables persistence commands.
    pub snapshot_model: Option<PathBuf>,
    /// Companion path for the graph.
    pub snapshot_graph: Option<PathBuf>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_max: 256,
            refresh_every: 0,
            snapshot_model: None,
            snapshot_graph: None,
        }
    }
}

/// The trainer thread's whole world.
pub struct Trainer {
    graph: Graph,
    model: OsElmSkipGram,
    inc: IncrementalTrainer,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    cfg: TrainerConfig,
    version: u64,
    events_since_refresh: u64,
}

impl Trainer {
    /// Builds the trainer and publishes the boot snapshot (version 0).
    pub fn new(
        graph: Graph,
        model: OsElmSkipGram,
        inc: IncrementalTrainer,
        cell: Arc<SnapshotCell>,
        stats: Arc<ServeStats>,
        cfg: TrainerConfig,
    ) -> Self {
        let mut t =
            Trainer { graph, model, inc, cell, stats, cfg, version: 0, events_since_refresh: 0 };
        t.sync_stats();
        t.publish();
        t
    }

    fn sync_stats(&self) {
        // `set_to` keeps the counter monotone even though the trainer
        // publishes an absolute count.
        self.stats.walks_trained.set_to(self.inc.outcome().walks_trained as u64);
    }

    fn publish(&mut self) {
        let out = self.inc.outcome();
        self.cell.publish(EmbeddingSnapshot {
            version: self.version,
            emb: self.model.embedding(),
            num_edges: self.graph.num_edges(),
            walks_trained: out.walks_trained,
            edges_inserted: out.edges_inserted,
            edges_removed: self.inc.edges_removed(),
        });
        self.version += 1;
    }

    fn apply(&mut self, event: EdgeEvent) {
        match self.inc.ingest(&mut self.graph, event, &mut self.model) {
            Ok(_) => {
                self.stats.applied.inc();
                self.events_since_refresh += 1;
            }
            Err(_) => {
                self.stats.rejected.inc();
            }
        }
        if self.cfg.refresh_every > 0 && self.events_since_refresh >= self.cfg.refresh_every {
            self.inc.refresh(&self.graph, &mut self.model);
            self.stats.refreshes.inc();
            self.events_since_refresh = 0;
        }
        self.sync_stats();
        self.stats.update_backlog();
    }

    fn snapshot_paths(&self) -> Result<(PathBuf, PathBuf), String> {
        match (&self.cfg.snapshot_model, &self.cfg.snapshot_graph) {
            (Some(m), Some(g)) => Ok((m.clone(), g.clone())),
            _ => Err("server started without --snapshot-dir".to_string()),
        }
    }

    /// Writes model + graph via temp-file-then-rename so a crash mid-write
    /// never clobbers the previous good snapshot.
    fn write_snapshot(&self) -> Result<(PathBuf, PathBuf), String> {
        let t0 = Instant::now();
        let (model_path, graph_path) = self.snapshot_paths()?;
        let mtmp = model_path.with_extension("tmp");
        let gtmp = graph_path.with_extension("tmp");
        persist::save_oselm(&self.model, &mtmp).map_err(|e| format!("model snapshot: {e}"))?;
        graph_io::save_graph(&self.graph, &gtmp).map_err(|e| format!("graph snapshot: {e}"))?;
        std::fs::rename(&mtmp, &model_path).map_err(|e| format!("model rename: {e}"))?;
        std::fs::rename(&gtmp, &graph_path).map_err(|e| format!("graph rename: {e}"))?;
        self.stats.snapshots_written.inc();
        self.stats.snapshot_ns.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        Ok((model_path, graph_path))
    }

    fn restore_snapshot(&mut self) -> Result<u64, String> {
        let (model_path, graph_path) = self.snapshot_paths()?;
        let model = persist::load_oselm(&model_path).map_err(|e| format!("model restore: {e}"))?;
        let graph = graph_io::load_graph(&graph_path).map_err(|e| format!("graph restore: {e}"))?;
        if model.beta_t().rows() != graph.num_nodes() {
            return Err(format!(
                "snapshot mismatch: model covers {} nodes, graph has {}",
                model.beta_t().rows(),
                graph.num_nodes()
            ));
        }
        self.model = model;
        self.graph = graph;
        self.publish();
        Ok(self.version - 1)
    }

    /// Runs the event loop until [`TrainerMsg::Shutdown`] or every sender
    /// hangs up. Consumes the trainer.
    pub fn run(mut self, rx: Receiver<TrainerMsg>) {
        loop {
            let first = match rx.recv() {
                Ok(m) => m,
                Err(_) => return, // all senders gone: server tore down
            };
            let mut control = None;
            match first {
                TrainerMsg::Event(e) => {
                    self.apply(e);
                    let mut batched = 1usize;
                    // Opportunistic batch: drain whatever queued up while
                    // training, then publish once.
                    while batched < self.cfg.batch_max {
                        match rx.try_recv() {
                            Ok(TrainerMsg::Event(e)) => {
                                self.apply(e);
                                batched += 1;
                            }
                            Ok(other) => {
                                control = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    self.publish();
                    self.stats.ingest_batch.record(batched as u64);
                }
                other => control = Some(other),
            }
            if let Some(msg) = control {
                match msg {
                    TrainerMsg::Event(_) => unreachable!("events handled above"),
                    TrainerMsg::Flush(ack) => {
                        // Everything sent before the flush is already
                        // applied (single FIFO channel), so just publish.
                        self.publish();
                        let _ = ack.send(self.version - 1);
                    }
                    TrainerMsg::Snapshot(ack) => {
                        let _ = ack.send(self.write_snapshot());
                    }
                    TrainerMsg::Restore(ack) => {
                        let _ = ack.send(self.restore_snapshot());
                    }
                    TrainerMsg::Shutdown(ack) => {
                        // Drain in-flight events so nothing queued is lost…
                        while let Ok(msg) = rx.try_recv() {
                            match msg {
                                TrainerMsg::Event(e) => self.apply(e),
                                TrainerMsg::Flush(a) => {
                                    let _ = a.send(self.version);
                                }
                                TrainerMsg::Snapshot(a) => {
                                    let _ = a.send(Err("shutting down".to_string()));
                                }
                                TrainerMsg::Restore(a) => {
                                    let _ = a.send(Err("shutting down".to_string()));
                                }
                                TrainerMsg::Shutdown(a) => {
                                    let _ = a.send(self.version);
                                }
                            }
                        }
                        // …then leave a final on-disk snapshot if configured.
                        if self.cfg.snapshot_model.is_some() {
                            if let Err(e) = self.write_snapshot() {
                                seqge_obs::error!("serve", "final snapshot failed: {e}");
                            }
                        }
                        self.publish();
                        let _ = ack.send(self.version - 1);
                        return;
                    }
                }
            }
        }
    }
}
