//! Bounded write-dedup table.
//!
//! Retried writes carry a [`crate::protocol::WriteId`] (`client` + `seq`),
//! and the server answers `deduped: true` for any sequence number at or
//! below the client's high-water mark instead of double-applying. PR 4
//! stored those marks in a plain `HashMap` that was wholesale cleared when
//! it filled — correct (the graph invariants are the real backstop) but
//! with a nasty cliff: one clear forgot *every* client at once.
//!
//! This table bounds memory with a sliding recency window instead. Each
//! `record` stamps the client with a monotone tick and pushes the stamp on
//! a queue; once more than `max_clients` distinct clients are tracked, the
//! stalest clients (by last stamp) are evicted as the window slides over
//! them. Active clients keep their marks indefinitely; only clients idle
//! for a full window's worth of writes fall out. The queue uses lazy
//! invalidation (stale stamps are skipped on pop), so both structures stay
//! within a constant factor of `max_clients` no matter how many writes —
//! or retries — pass through. The 1M-retry unit test below pins that down.

use crate::protocol::WriteId;
use std::collections::HashMap;

/// Per-client entry: high-water sequence number + last-touch tick.
struct Entry {
    seq: u64,
    tick: u64,
}

/// A bounded map from client id to highest acked write sequence number.
///
/// Not internally synchronized — the server wraps it in a `Mutex` (the
/// critical section is a hash probe, far from contended next to a WAL
/// append).
pub struct DedupTable {
    max_clients: usize,
    tick: u64,
    map: HashMap<String, Entry>,
    /// Recency window: `(tick, client)` stamps in issue order. A client's
    /// live stamp is the one matching `map[client].tick`; older stamps are
    /// skipped when they surface (lazy invalidation).
    window: Vec<(u64, String)>,
    /// Index of the first unconsumed stamp in `window` (the window is
    /// compacted once the consumed prefix dominates).
    head: usize,
    evictions: u64,
}

impl DedupTable {
    /// Creates a table remembering at most `max_clients` distinct clients
    /// (minimum 1).
    pub fn new(max_clients: usize) -> Self {
        DedupTable {
            max_clients: max_clients.max(1),
            tick: 0,
            map: HashMap::new(),
            window: Vec::new(),
            head: 0,
            evictions: 0,
        }
    }

    /// Whether `id` is a retry of an already-acked write (its `seq` is at
    /// or below the client's high-water mark).
    pub fn already_acked(&self, id: &WriteId) -> bool {
        self.map.get(&id.client).is_some_and(|e| id.seq <= e.seq)
    }

    /// Records an acked write, advancing the client's high-water mark and
    /// sliding the recency window (possibly evicting stale clients).
    pub fn record(&mut self, id: &WriteId) {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&id.client) {
            Some(e) => {
                e.seq = e.seq.max(id.seq);
                e.tick = tick;
            }
            None => {
                self.map.insert(id.client.clone(), Entry { seq: id.seq, tick });
            }
        }
        self.window.push((tick, id.client.clone()));
        self.slide();
    }

    /// Evicts stalest clients until at most `max_clients` remain, then
    /// compacts the consumed window prefix. Every pop retires one stamp, so
    /// the amortized cost per `record` is O(1) and `window` never holds
    /// more than `2 * max_clients + 1` live-or-stale stamps after a slide
    /// settles (each tracked client has exactly one live stamp; stale
    /// stamps are bounded by the compaction threshold).
    fn slide(&mut self) {
        while self.map.len() > self.max_clients
            || self.window.len() - self.head > 2 * self.max_clients
        {
            let (tick, client) = {
                let s = &self.window[self.head];
                (s.0, s.1.clone())
            };
            self.head += 1;
            // Only a client's *latest* stamp is live; an older one means the
            // client was touched again later and must not be evicted here.
            let live = self.map.get(&client).is_some_and(|e| e.tick == tick);
            if live && self.map.len() > self.max_clients {
                self.map.remove(&client);
                self.evictions += 1;
            } else if live {
                // Live stamp surfaced while only compacting: re-stamp at the
                // tail so the client stays tracked with a fresh stamp.
                self.tick += 1;
                let t = self.tick;
                if let Some(e) = self.map.get_mut(&client) {
                    e.tick = t;
                }
                self.window.push((t, client));
            }
        }
        if self.head > self.max_clients && self.head * 2 >= self.window.len() {
            self.window.drain(..self.head);
            self.head = 0;
        }
    }

    /// Distinct clients currently tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no client is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Clients evicted by the sliding window since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stamps currently buffered (live + stale); exposed so tests can
    /// assert memory stays flat.
    pub fn window_len(&self) -> usize {
        self.window.len() - self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(client: &str, seq: u64) -> WriteId {
        WriteId { client: client.to_string(), seq }
    }

    #[test]
    fn dedups_at_or_below_high_water_mark() {
        let mut t = DedupTable::new(8);
        assert!(!t.already_acked(&id("a", 1)));
        t.record(&id("a", 3));
        assert!(t.already_acked(&id("a", 1)));
        assert!(t.already_acked(&id("a", 3)));
        assert!(!t.already_acked(&id("a", 4)));
        assert!(!t.already_acked(&id("b", 1)));
    }

    #[test]
    fn evicts_stalest_client_first() {
        let mut t = DedupTable::new(2);
        t.record(&id("a", 1));
        t.record(&id("b", 1));
        t.record(&id("a", 2)); // refresh a: b is now the stalest
        t.record(&id("c", 1)); // window slides over b
        assert_eq!(t.len(), 2);
        assert!(t.already_acked(&id("a", 2)));
        assert!(t.already_acked(&id("c", 1)));
        assert!(!t.already_acked(&id("b", 1)), "stalest client was evicted");
        assert_eq!(t.evictions(), 1);
    }

    /// The satellite's acceptance test: a million retried writes (heavy
    /// re-stamping of a bounded client population plus a drifting tail of
    /// one-shot clients) must keep both the map and the stamp window flat.
    #[test]
    fn memory_stays_flat_over_one_million_retried_writes() {
        const CAP: usize = 512;
        let mut t = DedupTable::new(CAP);
        let mut max_window = 0usize;
        for i in 0u64..1_000_000 {
            // 3/4 of traffic: retries from a hot pool twice the cap wide, so
            // eviction runs continuously; 1/4: fresh one-shot clients.
            let w = if i % 4 != 0 {
                id(&format!("hot-{}", i % (2 * CAP as u64)), i / 7 + 1)
            } else {
                id(&format!("cold-{i}"), 1)
            };
            // Every write is immediately retried: the second attempt must
            // dedup (its seq equals the recorded high-water mark).
            if !t.already_acked(&w) {
                t.record(&w);
            }
            assert!(t.already_acked(&w), "write {i} not remembered immediately after record");
            assert!(t.len() <= CAP, "map grew past cap at write {i}: {}", t.len());
            max_window = max_window.max(t.window_len());
        }
        assert!(
            max_window <= 2 * CAP + 2,
            "stamp window not flat: peaked at {max_window} (cap {CAP})"
        );
        assert!(t.evictions() > 0, "eviction never exercised");
    }

    #[test]
    fn hot_client_survives_cold_churn() {
        let mut t = DedupTable::new(4);
        t.record(&id("hot", 10));
        for i in 0..100u64 {
            t.record(&id(&format!("cold-{i}"), 1));
            // Touch the hot client every other write: it must never age out.
            if i % 2 == 0 {
                t.record(&id("hot", 10 + i));
            }
        }
        assert!(t.already_acked(&id("hot", 10)), "hot client evicted despite constant traffic");
    }
}
