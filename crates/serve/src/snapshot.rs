//! Read-optimized embedding snapshots and their publication cell.
//!
//! The serving invariant: **queries never block on a training step.** The
//! trainer thread periodically renders its model into an immutable
//! [`EmbeddingSnapshot`] and publishes it through a [`SnapshotCell`] — a
//! versioned `Arc` slot whose swap is a pointer store under a micro-lock
//! (nanoseconds, never held across training). Readers go through a
//! [`SnapshotReader`], which caches the last `Arc` it saw and consults only
//! a lock-free atomic version counter per query; the micro-lock is touched
//! once per *publication*, not once per query.

use seqge_eval::EdgeOp;
use seqge_graph::NodeId;
use seqge_linalg::Mat;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable view of the model at one training version: the embedding
/// matrix plus the telemetry the `stats` command reports.
#[derive(Debug, Clone)]
pub struct EmbeddingSnapshot {
    /// Monotonic publication version (0 = boot snapshot).
    pub version: u64,
    /// One embedding row per node.
    pub emb: Mat<f32>,
    /// Edges in the graph when the snapshot was taken.
    pub num_edges: usize,
    /// Walks trained since boot.
    pub walks_trained: usize,
    /// Edge insertions applied since boot.
    pub edges_inserted: usize,
    /// Edge retractions applied since boot.
    pub edges_removed: usize,
}

impl EmbeddingSnapshot {
    /// Number of nodes the model covers.
    pub fn num_nodes(&self) -> usize {
        self.emb.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.emb.cols()
    }

    /// The embedding row for `node`, or `None` if out of range.
    pub fn embedding(&self, node: NodeId) -> Option<&[f32]> {
        if (node as usize) < self.emb.rows() {
            Some(self.emb.row(node as usize))
        } else {
            None
        }
    }

    /// Scores the pair `(u, v)` under `op` (the `score_link` read command,
    /// reusing the link-prediction edge operators). `None` if either node
    /// is out of range.
    pub fn score(&self, u: NodeId, v: NodeId, op: EdgeOp) -> Option<f64> {
        let n = self.emb.rows();
        if (u as usize) < n && (v as usize) < n {
            Some(op.score(&self.emb, u, v))
        } else {
            None
        }
    }

    /// The `k` nearest neighbors of `node` under `op`, best first, the
    /// query node itself excluded. `None` if `node` is out of range.
    pub fn topk(&self, node: NodeId, k: usize, op: EdgeOp) -> Option<Vec<(NodeId, f64)>> {
        self.topk_filtered(node, k, op, None)
    }

    /// [`EmbeddingSnapshot::topk`] restricted to one residue class of the
    /// vertex space: with `filter = Some((m, r))`, only candidates `v` with
    /// `v % m == r` compete. The cluster router fans a query out with each
    /// shard's own `(shards, shard_id)` filter so every candidate is scored
    /// by exactly the shard that owns (and trains) it, then merges the
    /// per-shard lists. Ties break deterministically: equal scores order by
    /// ascending node id.
    pub fn topk_filtered(
        &self,
        node: NodeId,
        k: usize,
        op: EdgeOp,
        filter: Option<(u32, u32)>,
    ) -> Option<Vec<(NodeId, f64)>> {
        if node as usize >= self.emb.rows() {
            return None;
        }
        if k == 0 {
            return Some(Vec::new());
        }
        // Bounded selection: keep the k best seen so far in a small vec
        // (k ≪ n in practice), replacing the current worst on improvement.
        // `total_cmp` on (score desc, id asc) makes the order total, so the
        // same snapshot always returns the same list.
        let better = |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
        let mut best: Vec<(NodeId, f64)> = Vec::with_capacity(k + 1);
        for v in 0..self.emb.rows() as NodeId {
            if v == node {
                continue;
            }
            if let Some((m, r)) = filter {
                if v % m != r {
                    continue;
                }
            }
            let s = op.score(&self.emb, node, v);
            if best.len() < k {
                best.push((v, s));
                best.sort_by(better);
            } else if better(&(v, s), &best[k - 1]).is_lt() {
                best[k - 1] = (v, s);
                best.sort_by(better);
            }
        }
        Some(best)
    }
}

/// The publication point between the trainer and the query plane.
pub struct SnapshotCell {
    version: AtomicU64,
    slot: Mutex<Arc<EmbeddingSnapshot>>,
}

impl SnapshotCell {
    /// Creates a cell holding `initial` (stamped as its own version).
    pub fn new(initial: EmbeddingSnapshot) -> Self {
        SnapshotCell {
            version: AtomicU64::new(initial.version),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// Publishes a snapshot: swaps the `Arc` and bumps the version counter.
    /// The lock guards only the pointer store; readers holding the previous
    /// `Arc` keep it alive without any coordination.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) {
        let v = snapshot.version;
        *self.slot.lock().expect("snapshot slot poisoned") = Arc::new(snapshot);
        self.version.store(v, Ordering::Release);
    }

    /// Current published version — a single lock-free atomic load.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the current snapshot `Arc` (brief lock; use a
    /// [`SnapshotReader`] on query paths to avoid even that per query).
    pub fn load(&self) -> Arc<EmbeddingSnapshot> {
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }
}

/// A per-connection cache over a [`SnapshotCell`]: each query costs one
/// atomic version check, and the slot lock is only touched when the trainer
/// actually published something new since the last query.
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cached: Arc<EmbeddingSnapshot>,
}

impl SnapshotReader {
    /// Creates a reader over `cell`, pre-populating the cache.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        let cached = cell.load();
        SnapshotReader { cell, cached }
    }

    /// The freshest published snapshot.
    pub fn current(&mut self) -> &Arc<EmbeddingSnapshot> {
        if self.cell.version() != self.cached.version {
            self.cached = self.cell.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: u64, rows: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot {
            version,
            emb: Mat::from_fn(rows, 4, |r, c| (r * 4 + c) as f32 / 10.0),
            num_edges: 0,
            walks_trained: 0,
            edges_inserted: 0,
            edges_removed: 0,
        }
    }

    #[test]
    fn embedding_and_score_are_range_checked() {
        let s = snap(1, 3);
        assert_eq!(s.embedding(2).unwrap().len(), 4);
        assert!(s.embedding(3).is_none());
        assert!(s.score(0, 2, EdgeOp::Dot).is_some());
        assert!(s.score(0, 3, EdgeOp::Dot).is_none());
        assert!(s.score(9, 0, EdgeOp::Cosine).is_none());
    }

    #[test]
    fn topk_orders_best_first_and_excludes_self() {
        // Rows: e0 = [1,0], e1 = [1,0], e2 = [0.5,0], e3 = [-1,0].
        let emb = Mat::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 0.5, 0.0, -1.0, 0.0]);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        let top = s.topk(0, 2, EdgeOp::Dot).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "identical row is nearest");
        assert_eq!(top[1].0, 2);
        assert!(top[0].1 >= top[1].1);
        // k larger than candidate pool truncates to n-1.
        assert_eq!(s.topk(0, 10, EdgeOp::Dot).unwrap().len(), 3);
        assert!(s.topk(4, 2, EdgeOp::Dot).is_none(), "out-of-range node");
    }

    #[test]
    fn topk_ties_break_by_ascending_node_id() {
        // Nodes 1, 2, 3 are identical: scores tie, ids decide.
        let emb = Mat::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        let top = s.topk(0, 2, EdgeOp::Dot).unwrap();
        assert_eq!(top.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn topk_filter_restricts_to_residue_class() {
        let emb = Mat::from_fn(10, 2, |r, _| 1.0 - r as f32 / 10.0);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        // Only v ≡ 1 (mod 3) compete for node 0's neighbors: 1, 4, 7.
        let hits = s.topk_filtered(0, 10, EdgeOp::Dot, Some((3, 1))).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 4, 7]);
        // The query node is excluded even when it matches the class.
        let hits = s.topk_filtered(3, 10, EdgeOp::Dot, Some((3, 0))).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 6, 9]);
        // Unfiltered call is the same as filter None.
        assert_eq!(s.topk(2, 4, EdgeOp::Cosine), s.topk_filtered(2, 4, EdgeOp::Cosine, None));
    }

    #[test]
    fn cell_publish_bumps_version_and_readers_refresh() {
        let cell = Arc::new(SnapshotCell::new(snap(0, 2)));
        let mut reader = SnapshotReader::new(cell.clone());
        assert_eq!(reader.current().version, 0);
        cell.publish(snap(7, 2));
        assert_eq!(cell.version(), 7);
        assert_eq!(reader.current().version, 7);
        // Old Arcs stay valid after publication.
        let old = cell.load();
        cell.publish(snap(8, 2));
        assert_eq!(old.version, 7);
        assert_eq!(reader.current().version, 8);
    }
}
