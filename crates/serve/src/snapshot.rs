//! Read-optimized embedding snapshots and their publication cell.
//!
//! The serving invariant: **queries never block on a training step.** The
//! trainer thread periodically renders its model into an immutable
//! [`EmbeddingSnapshot`] and publishes it through a [`SnapshotCell`] — a
//! versioned `Arc` slot whose swap is a pointer store under a micro-lock
//! (nanoseconds, never held across training). Readers go through a
//! [`SnapshotReader`], which caches the last `Arc` it saw and consults only
//! a lock-free atomic version counter per query; the micro-lock is touched
//! once per *publication*, not once per query.

use seqge_ann::AnnIndex;
use seqge_eval::EdgeOp;
use seqge_graph::NodeId;
use seqge_linalg::Mat;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An immutable view of the model at one training version: the embedding
/// matrix plus the telemetry the `stats` command reports.
#[derive(Debug, Clone)]
pub struct EmbeddingSnapshot {
    /// Monotonic publication version (0 = boot snapshot).
    pub version: u64,
    /// One embedding row per node.
    pub emb: Mat<f32>,
    /// Edges in the graph when the snapshot was taken.
    pub num_edges: usize,
    /// Walks trained since boot.
    pub walks_trained: usize,
    /// Edge insertions applied since boot.
    pub edges_inserted: usize,
    /// Edge retractions applied since boot.
    pub edges_removed: usize,
    /// ANN index over `emb`, built by the trainer *for this exact matrix*
    /// and published inside the same `Arc` — a reader can never pair a
    /// stale index with fresh embeddings or vice versa. `None` when ANN is
    /// disabled (queries with `mode:"ann"` then fall back to the exact
    /// scan).
    pub ann: Option<Arc<AnnIndex>>,
}

/// Result of [`EmbeddingSnapshot::topk_ann`]: the hits plus how the
/// candidate set was produced (mirrored into `seqge_ann_*` metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnTopK {
    /// The `k` best candidates, best first — scored and tie-broken exactly
    /// like the brute-force path.
    pub hits: Vec<(NodeId, f64)>,
    /// Candidates scored (after self/filter exclusion). For a fallback
    /// this is the brute-force pool size.
    pub candidates: usize,
    /// `true` when the exact scan answered instead of the index (index
    /// absent, geometry mismatch, or candidate pool smaller than `k`).
    pub fallback: bool,
}

impl EmbeddingSnapshot {
    /// Number of nodes the model covers.
    pub fn num_nodes(&self) -> usize {
        self.emb.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.emb.cols()
    }

    /// The embedding row for `node`, or `None` if out of range.
    pub fn embedding(&self, node: NodeId) -> Option<&[f32]> {
        if (node as usize) < self.emb.rows() {
            Some(self.emb.row(node as usize))
        } else {
            None
        }
    }

    /// Scores the pair `(u, v)` under `op` (the `score_link` read command,
    /// reusing the link-prediction edge operators). `None` if either node
    /// is out of range.
    pub fn score(&self, u: NodeId, v: NodeId, op: EdgeOp) -> Option<f64> {
        let n = self.emb.rows();
        if (u as usize) < n && (v as usize) < n {
            Some(op.score(&self.emb, u, v))
        } else {
            None
        }
    }

    /// The `k` nearest neighbors of `node` under `op`, best first, the
    /// query node itself excluded. `None` if `node` is out of range.
    pub fn topk(&self, node: NodeId, k: usize, op: EdgeOp) -> Option<Vec<(NodeId, f64)>> {
        self.topk_filtered(node, k, op, None)
    }

    /// [`EmbeddingSnapshot::topk`] restricted to one residue class of the
    /// vertex space: with `filter = Some((m, r))`, only candidates `v` with
    /// `v % m == r` compete. The cluster router fans a query out with each
    /// shard's own `(shards, shard_id)` filter so every candidate is scored
    /// by exactly the shard that owns (and trains) it, then merges the
    /// per-shard lists. Ties break deterministically: equal scores order by
    /// ascending node id.
    pub fn topk_filtered(
        &self,
        node: NodeId,
        k: usize,
        op: EdgeOp,
        filter: Option<(u32, u32)>,
    ) -> Option<Vec<(NodeId, f64)>> {
        if node as usize >= self.emb.rows() {
            return None;
        }
        let keep = move |v: &NodeId| *v != node && filter.is_none_or(|(m, r)| *v % m == r);
        Some(self.rank_top_k(node, k, op, (0..self.emb.rows() as NodeId).filter(keep)))
    }

    /// [`EmbeddingSnapshot::topk_filtered`] answered from the published
    /// ANN index: the candidate pool is the union of the query's LSH
    /// buckets (plus `probes` low-margin probes per band) instead of every
    /// vertex, then re-ranked *exactly* — scores and tie-breaks are
    /// identical to the brute-force path; only membership of the pool is
    /// approximate. Falls back to the exact scan (and says so) when no
    /// index is published, the index covers a different matrix geometry,
    /// or fewer than `k` candidates survive the self/filter exclusion.
    /// `None` if `node` is out of range.
    pub fn topk_ann(
        &self,
        node: NodeId,
        k: usize,
        op: EdgeOp,
        filter: Option<(u32, u32)>,
        probes: usize,
    ) -> Option<AnnTopK> {
        if node as usize >= self.emb.rows() {
            return None;
        }
        if k == 0 {
            return Some(AnnTopK { hits: Vec::new(), candidates: 0, fallback: false });
        }
        let keep = move |v: &NodeId| *v != node && filter.is_none_or(|(m, r)| *v % m == r);
        if let Some(index) = self.ann.as_ref().filter(|ix| ix.num_points() == self.emb.rows()) {
            let cands: Vec<NodeId> = index
                .candidates(self.emb.row(node as usize), probes)
                .into_iter()
                .filter(keep)
                .collect();
            if cands.len() >= k {
                let n = cands.len();
                return Some(AnnTopK {
                    hits: self.rank_top_k(node, k, op, cands.into_iter()),
                    candidates: n,
                    fallback: false,
                });
            }
        }
        let pool = (0..self.emb.rows() as NodeId).filter(keep);
        let candidates = pool.clone().count();
        Some(AnnTopK { hits: self.rank_top_k(node, k, op, pool), candidates, fallback: true })
    }

    /// Exact ranking of an explicit candidate pool: score everything, move
    /// the k best to the front with `select_nth_unstable_by` (O(c)), then
    /// sort only those k survivors (O(k log k)) — the pool never pays a
    /// full O(c log c) sort. `total_cmp` on (score desc, id asc) makes the
    /// order total, so the same snapshot always returns the same list.
    fn rank_top_k(
        &self,
        node: NodeId,
        k: usize,
        op: EdgeOp,
        candidates: impl Iterator<Item = NodeId>,
    ) -> Vec<(NodeId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let better = |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
        let mut scored: Vec<(NodeId, f64)> =
            candidates.map(|v| (v, op.score(&self.emb, node, v))).collect();
        if scored.len() > k {
            scored.select_nth_unstable_by(k - 1, better);
            scored.truncate(k);
        }
        scored.sort_by(better);
        scored
    }
}

/// The publication point between the trainer and the query plane.
pub struct SnapshotCell {
    version: AtomicU64,
    slot: Mutex<Arc<EmbeddingSnapshot>>,
    /// When the current snapshot went out, for the always-on staleness
    /// readout (`stats.snapshot_staleness_ms` works with `SEQGE_OBS=off`).
    published_at: Mutex<Instant>,
}

impl SnapshotCell {
    /// Creates a cell holding `initial` (stamped as its own version).
    pub fn new(initial: EmbeddingSnapshot) -> Self {
        SnapshotCell {
            version: AtomicU64::new(initial.version),
            slot: Mutex::new(Arc::new(initial)),
            published_at: Mutex::new(Instant::now()),
        }
    }

    /// Stamps the publication time of the current snapshot (called by the
    /// trainer right after [`SnapshotCell::publish`]).
    pub fn mark_published(&self, at: Instant) {
        *self.published_at.lock().expect("publish stamp poisoned") = at;
    }

    /// Milliseconds since the current snapshot was published.
    pub fn staleness_ms(&self) -> u64 {
        self.published_at.lock().expect("publish stamp poisoned").elapsed().as_millis() as u64
    }

    /// Publishes a snapshot: swaps the `Arc` and bumps the version counter.
    /// The lock guards only the pointer store; readers holding the previous
    /// `Arc` keep it alive without any coordination.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) {
        let v = snapshot.version;
        *self.slot.lock().expect("snapshot slot poisoned") = Arc::new(snapshot);
        self.version.store(v, Ordering::Release);
    }

    /// Current published version — a single lock-free atomic load.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the current snapshot `Arc` (brief lock; use a
    /// [`SnapshotReader`] on query paths to avoid even that per query).
    pub fn load(&self) -> Arc<EmbeddingSnapshot> {
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }
}

/// A per-connection cache over a [`SnapshotCell`]: each query costs one
/// atomic version check, and the slot lock is only touched when the trainer
/// actually published something new since the last query.
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cached: Arc<EmbeddingSnapshot>,
}

impl SnapshotReader {
    /// Creates a reader over `cell`, pre-populating the cache.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        let cached = cell.load();
        SnapshotReader { cell, cached }
    }

    /// The freshest published snapshot.
    pub fn current(&mut self) -> &Arc<EmbeddingSnapshot> {
        if self.cell.version() != self.cached.version {
            self.cached = self.cell.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: u64, rows: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot {
            version,
            emb: Mat::from_fn(rows, 4, |r, c| (r * 4 + c) as f32 / 10.0),
            num_edges: 0,
            walks_trained: 0,
            edges_inserted: 0,
            edges_removed: 0,
            ann: None,
        }
    }

    #[test]
    fn embedding_and_score_are_range_checked() {
        let s = snap(1, 3);
        assert_eq!(s.embedding(2).unwrap().len(), 4);
        assert!(s.embedding(3).is_none());
        assert!(s.score(0, 2, EdgeOp::Dot).is_some());
        assert!(s.score(0, 3, EdgeOp::Dot).is_none());
        assert!(s.score(9, 0, EdgeOp::Cosine).is_none());
    }

    #[test]
    fn topk_orders_best_first_and_excludes_self() {
        // Rows: e0 = [1,0], e1 = [1,0], e2 = [0.5,0], e3 = [-1,0].
        let emb = Mat::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 0.5, 0.0, -1.0, 0.0]);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        let top = s.topk(0, 2, EdgeOp::Dot).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "identical row is nearest");
        assert_eq!(top[1].0, 2);
        assert!(top[0].1 >= top[1].1);
        // k larger than candidate pool truncates to n-1.
        assert_eq!(s.topk(0, 10, EdgeOp::Dot).unwrap().len(), 3);
        assert!(s.topk(4, 2, EdgeOp::Dot).is_none(), "out-of-range node");
    }

    #[test]
    fn topk_ties_break_by_ascending_node_id() {
        // Nodes 1, 2, 3 are identical: scores tie, ids decide.
        let emb = Mat::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        let top = s.topk(0, 2, EdgeOp::Dot).unwrap();
        assert_eq!(top.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn topk_filter_restricts_to_residue_class() {
        let emb = Mat::from_fn(10, 2, |r, _| 1.0 - r as f32 / 10.0);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        // Only v ≡ 1 (mod 3) compete for node 0's neighbors: 1, 4, 7.
        let hits = s.topk_filtered(0, 10, EdgeOp::Dot, Some((3, 1))).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 4, 7]);
        // The query node is excluded even when it matches the class.
        let hits = s.topk_filtered(3, 10, EdgeOp::Dot, Some((3, 0))).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 6, 9]);
        // Unfiltered call is the same as filter None.
        assert_eq!(s.topk(2, 4, EdgeOp::Cosine), s.topk_filtered(2, 4, EdgeOp::Cosine, None));
    }

    #[test]
    fn topk_ann_without_index_falls_back_to_exact() {
        let emb = Mat::from_fn(20, 4, |r, c| ((r * 5 + c) % 7) as f32 - 3.0);
        let s = EmbeddingSnapshot { emb, ..snap(1, 0) };
        let got = s.topk_ann(3, 5, EdgeOp::Cosine, None, 4).unwrap();
        assert!(got.fallback);
        assert_eq!(got.candidates, 19);
        assert_eq!(got.hits, s.topk(3, 5, EdgeOp::Cosine).unwrap());
        assert!(s.topk_ann(20, 5, EdgeOp::Dot, None, 4).is_none(), "out of range");
        let empty = s.topk_ann(3, 0, EdgeOp::Dot, None, 4).unwrap();
        assert!(empty.hits.is_empty() && !empty.fallback);
    }

    #[test]
    fn topk_ann_with_index_matches_exact_on_clustered_data() {
        use seqge_ann::{AnnBuilder, AnnConfig};
        // Two tight antipodal clusters: candidate recall is perfect, so
        // ANN and exact must agree bit-for-bit.
        let emb = Mat::from_fn(64, 8, |r, c| {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            sign * (1.0 + (r * 3 + c) as f32 * 0.003)
        });
        let (index, _) = AnnBuilder::new(AnnConfig::default()).sync(&emb);
        let s = EmbeddingSnapshot { emb, ann: Some(index), ..snap(1, 0) };
        for node in [0, 7, 31] {
            let ann = s.topk_ann(node, 8, EdgeOp::Cosine, None, 8).unwrap();
            assert!(!ann.fallback, "cluster bucket holds ≥ 8 candidates");
            assert!(ann.candidates < 64, "candidate pool is a strict subset");
            assert_eq!(ann.hits, s.topk(node, 8, EdgeOp::Cosine).unwrap());
        }
        // Residue filter composes: survivors all match the class.
        let ann = s.topk_ann(0, 3, EdgeOp::Dot, Some((4, 2)), 8).unwrap();
        assert!(ann.hits.iter().all(|h| h.0 % 4 == 2));
        assert_eq!(ann.hits, s.topk_filtered(0, 3, EdgeOp::Dot, Some((4, 2))).unwrap());
    }

    #[test]
    fn topk_ann_geometry_mismatch_falls_back() {
        use seqge_ann::{AnnBuilder, AnnConfig};
        let stale = Mat::from_fn(10, 4, |r, c| (r + c) as f32);
        let (index, _) = AnnBuilder::new(AnnConfig::default()).sync(&stale);
        let emb = Mat::from_fn(12, 4, |r, c| (r + c) as f32);
        let s = EmbeddingSnapshot { emb, ann: Some(index), ..snap(1, 0) };
        let got = s.topk_ann(0, 3, EdgeOp::Dot, None, 4).unwrap();
        assert!(got.fallback, "index covers 10 points, snapshot has 12");
        assert_eq!(got.hits, s.topk(0, 3, EdgeOp::Dot).unwrap());
    }

    #[test]
    fn cell_publish_bumps_version_and_readers_refresh() {
        let cell = Arc::new(SnapshotCell::new(snap(0, 2)));
        let mut reader = SnapshotReader::new(cell.clone());
        assert_eq!(reader.current().version, 0);
        cell.publish(snap(7, 2));
        assert_eq!(cell.version(), 7);
        assert_eq!(reader.current().version, 7);
        // Old Arcs stay valid after publication.
        let old = cell.load();
        cell.publish(snap(8, 2));
        assert_eq!(old.version, 7);
        assert_eq!(reader.current().version, 8);
    }
}
