//! Deterministic fault injection for the serve plane.
//!
//! Chaos testing needs failures that are *reproducible*: the same seed must
//! produce the same fault schedule so a CI matrix over seeds explores
//! different failure interleavings without flaking. Each [`FaultPoint`]
//! keeps its own call counter, and the fire/no-fire decision for the n-th
//! visit to a point is a pure hash of `(seed, point, n)` — independent of
//! thread scheduling, wall clock, and every other point.
//!
//! Activation is environmental so the same binary runs clean in production
//! and hostile under test:
//!
//! ```text
//! SEQGE_FAULT="conn_drop=0.05,wal_short_write=0.02,trainer_panic=0.01"
//! SEQGE_FAULT_SEED=7          # schedule selector (default 0)
//! SEQGE_FAULT_STALL_MS=1500   # duration of injected stalls (default 1200)
//! ```
//!
//! Rates are probabilities in `[0, 1]`. Every fired fault is counted in the
//! server registry as `seqge_serve_fault_injected_total{point=...}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Every place the serve plane can be made to fail on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// WAL append writes only a prefix of the record and reports an error,
    /// leaving a torn tail on disk (healed before the next append, kept if
    /// the process dies first — exactly a crash mid-write).
    WalShortWrite,
    /// WAL append fails cleanly before writing anything.
    WalAppendError,
    /// The server drops a connection after reading a request, before
    /// answering (the client sees EOF mid-call).
    ConnDrop,
    /// The server stalls before answering for longer than a sane client
    /// timeout (exercises client-side deadlines and reconnect).
    ConnStall,
    /// The trainer thread panics while applying an event.
    TrainerPanic,
    /// The trainer sleeps per applied event (builds real backlog, which is
    /// how backpressure shedding is tested deterministically).
    TrainerStall,
}

impl FaultPoint {
    /// Every point, in a fixed order (index = counter slot).
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::WalShortWrite,
        FaultPoint::WalAppendError,
        FaultPoint::ConnDrop,
        FaultPoint::ConnStall,
        FaultPoint::TrainerPanic,
        FaultPoint::TrainerStall,
    ];

    /// The spec / metric-label name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WalShortWrite => "wal_short_write",
            FaultPoint::WalAppendError => "wal_append_error",
            FaultPoint::ConnDrop => "conn_drop",
            FaultPoint::ConnStall => "conn_stall",
            FaultPoint::TrainerPanic => "trainer_panic",
            FaultPoint::TrainerStall => "trainer_stall",
        }
    }

    fn index(self) -> usize {
        FaultPoint::ALL.iter().position(|&p| p == self).expect("point listed in ALL")
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good enough to decorrelate
/// `(seed, point, call)` triples into uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic fault schedule. Cheap to consult (one atomic increment
/// plus a hash when the point is armed, one load when it is not).
pub struct FaultInjector {
    seed: u64,
    /// Per-point fire threshold in units of 2⁻³², `u32::MAX`-capped;
    /// 0 = disarmed.
    thresholds: [u32; FaultPoint::ALL.len()],
    /// Per-point visit counters (the `n` in the hash).
    visits: [AtomicU64; FaultPoint::ALL.len()],
    /// Per-point fired counters (exported through `ServeStats`).
    fired: [AtomicU64; FaultPoint::ALL.len()],
    stall: Duration,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

impl FaultInjector {
    /// An injector with every point disarmed ([`FaultInjector::should`] is
    /// a single relaxed load).
    pub fn disabled() -> Self {
        FaultInjector {
            seed: 0,
            thresholds: [0; FaultPoint::ALL.len()],
            visits: Default::default(),
            fired: Default::default(),
            stall: Duration::from_millis(1200),
        }
    }

    /// Builds the injector from `SEQGE_FAULT` / `SEQGE_FAULT_SEED` /
    /// `SEQGE_FAULT_STALL_MS`. An unset or empty `SEQGE_FAULT` disables
    /// everything; a malformed spec is an error (silent misconfiguration
    /// would defeat the chaos suite).
    pub fn from_env() -> Result<Self, String> {
        let spec = std::env::var("SEQGE_FAULT").unwrap_or_default();
        if spec.trim().is_empty() {
            return Ok(FaultInjector::disabled());
        }
        let seed = match std::env::var("SEQGE_FAULT_SEED") {
            Ok(s) => s.parse().map_err(|_| format!("SEQGE_FAULT_SEED: cannot parse `{s}`"))?,
            Err(_) => 0,
        };
        let mut inj = FaultInjector::parse(&spec, seed)?;
        if let Ok(ms) = std::env::var("SEQGE_FAULT_STALL_MS") {
            let ms: u64 = ms.parse().map_err(|_| format!("SEQGE_FAULT_STALL_MS: `{ms}`"))?;
            inj.stall = Duration::from_millis(ms);
        }
        Ok(inj)
    }

    /// Parses a `point=rate,point=rate` spec (rates in `[0, 1]`).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut inj = FaultInjector { seed, ..FaultInjector::disabled() };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, rate) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: want name=rate"))?;
            let rate: f64 =
                rate.trim().parse().map_err(|_| format!("fault rate `{rate}`: not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
            let point = FaultPoint::ALL
                .iter()
                .find(|p| p.name() == name.trim())
                .ok_or_else(|| format!("unknown fault point `{name}`"))?;
            inj.thresholds[point.index()] = (rate * u32::MAX as f64).round() as u32;
        }
        Ok(inj)
    }

    /// Overrides the stall duration (tests; `SEQGE_FAULT_STALL_MS` is the
    /// environmental equivalent).
    pub fn with_stall(mut self, d: Duration) -> Self {
        self.stall = d;
        self
    }

    /// Whether any point is armed.
    pub fn active(&self) -> bool {
        self.thresholds.iter().any(|&t| t > 0)
    }

    /// Decides (deterministically) whether this visit to `point` fails.
    pub fn should(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let threshold = self.thresholds[i];
        if threshold == 0 {
            return false;
        }
        let n = self.visits[i].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.seed ^ ((i as u64) << 56) ^ n);
        let fire = (h >> 32) as u32 <= threshold;
        if fire {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How long an injected stall lasts.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// How many times `point` has actually fired.
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..1000 {
            for p in FaultPoint::ALL {
                assert!(!inj.should(p));
            }
        }
        assert!(!inj.active());
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_rate_is_respected() {
        let spec = "conn_drop=0.25,trainer_panic=0.01";
        let a = FaultInjector::parse(spec, 7).unwrap();
        let b = FaultInjector::parse(spec, 7).unwrap();
        let fires_a: Vec<bool> = (0..4000).map(|_| a.should(FaultPoint::ConnDrop)).collect();
        let fires_b: Vec<bool> = (0..4000).map(|_| b.should(FaultPoint::ConnDrop)).collect();
        assert_eq!(fires_a, fires_b, "same seed, same schedule");
        let rate = fires_a.iter().filter(|&&f| f).count() as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate} far from 0.25");

        // A different seed gives a different schedule (with overwhelming
        // probability at this length).
        let c = FaultInjector::parse(spec, 8).unwrap();
        let fires_c: Vec<bool> = (0..4000).map(|_| c.should(FaultPoint::ConnDrop)).collect();
        assert_ne!(fires_a, fires_c);
        // Points are independent: the panic arm stayed untouched above.
        assert_eq!(a.fired(FaultPoint::TrainerPanic), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultInjector::parse("conn_drop", 0).is_err());
        assert!(FaultInjector::parse("warp_core=0.5", 0).is_err());
        assert!(FaultInjector::parse("conn_drop=1.5", 0).is_err());
        assert!(FaultInjector::parse("conn_drop=x", 0).is_err());
        assert!(FaultInjector::parse("conn_drop=1.0,conn_stall=0.0", 3).is_ok());
    }

    #[test]
    fn rate_one_always_fires_and_counts() {
        let inj = FaultInjector::parse("wal_short_write=1.0", 0).unwrap();
        for _ in 0..10 {
            assert!(inj.should(FaultPoint::WalShortWrite));
        }
        assert_eq!(inj.fired(FaultPoint::WalShortWrite), 10);
    }
}
