//! # seqge-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! index), plus Criterion micro-benchmarks under `benches/`. This library
//! holds the shared plumbing: CLI parsing, dataset preparation, timing
//! helpers, and JSON result emission.
//!
//! Every binary accepts:
//!
//! * `--scale <f>`   — shrink datasets / edge streams for quick runs
//!   (default varies per binary; `--scale 1.0` is the full paper protocol).
//! * `--json <path>` — also write machine-readable results.
//! * `--dims a,b,c`  — override the embedding-dimension sweep.
//! * `--seed <n>`    — override the base seed.

pub mod args;
pub mod prep;
pub mod sbm_stream;
pub mod timing;

pub use args::Args;
pub use prep::{prepared_walks, PreparedGraph};
pub use sbm_stream::{clustered_embeddings, SbmStream, SbmStreamParams};
pub use timing::time_walk_training;

use std::io::Write as _;
use std::path::Path;

/// Writes `value` as pretty JSON to `path` (creating parent directories).
pub fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    let s = serde_json::to_string_pretty(value).expect("results are serializable");
    f.write_all(s.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(())
}

/// Standard banner printed by every experiment binary.
pub fn banner(what: &str, scale: f64) {
    println!("== seqge reproduction: {what} ==");
    if (scale - 1.0).abs() > f64::EPSILON {
        println!("   (running at scale {scale}; pass --scale 1.0 for the full paper protocol)");
    }
    println!();
}
