//! Wall-clock measurement of per-walk training (Tables 3 and 4).

use seqge_core::model::EmbeddingModel;
use seqge_graph::NodeId;
use seqge_sampling::{NegativeTable, Rng64};
use std::time::Instant;

/// Measures the mean per-walk training time of `model` over `walks`,
/// repeating the pass until at least `min_total_secs` of work has been
/// timed (steadier numbers for fast models).
pub fn time_walk_training<M: EmbeddingModel>(
    model: &mut M,
    walks: &[Vec<NodeId>],
    table: &NegativeTable,
    rng: &mut Rng64,
    min_total_secs: f64,
) -> f64 {
    assert!(!walks.is_empty(), "need at least one walk to time");
    // Warmup: one pass to fault in weights and stabilize clocks.
    for walk in walks.iter().take(100) {
        model.train_walk(walk, table, rng);
    }
    // Repeated passes over the batch; report the fastest pass (the standard
    // noisy-host estimator — scheduling jitter only ever adds time).
    let mut best = f64::INFINITY;
    let start = Instant::now();
    loop {
        let pass = Instant::now();
        for walk in walks {
            model.train_walk(walk, table, rng);
        }
        best = best.min(pass.elapsed().as_secs_f64() / walks.len() as f64);
        if start.elapsed().as_secs_f64() >= min_total_secs {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_core::{ModelConfig, OsElmConfig, OsElmSkipGram};
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    #[test]
    fn returns_positive_per_walk_seconds() {
        let n = 50;
        let cfg = ModelConfig {
            dim: 8,
            window: 4,
            negative_samples: 2,
            ..ModelConfig::paper_defaults(8)
        };
        let mut model =
            OsElmSkipGram::new(n, OsElmConfig { model: cfg, ..OsElmConfig::paper_defaults(8) });
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as u32).collect::<Vec<_>>());
        let mut table = NegativeTable::new(UpdatePolicy::every_edge());
        table.rebuild(&corpus);
        let walks = vec![(0..12u32).collect::<Vec<_>>(); 4];
        let mut rng = Rng64::seed_from_u64(1);
        let t = time_walk_training(&mut model, &walks, &table, &mut rng, 0.01);
        assert!(t > 0.0 && t < 1.0);
    }
}
