//! Table 3 — training time of a single random walk, embedded-class CPU vs
//! the FPGA accelerator.
//!
//! The paper measures an ARM Cortex-A53 @1.2 GHz against the ZCU104 PL.
//! Neither is available here, so (substitution, DESIGN.md §1):
//!
//! * the two software models are *measured* on the host CPU;
//! * the FPGA row comes from the calibrated cycle model;
//! * an "A53-projected" column scales the host measurements by a single
//!   documented factor derived from the paper's own Table 3 / Table 4 pair
//!   (the geometric mean of the per-entry A53/i7 ratios, ≈ 29×) — it exists
//!   to put the speedup columns on the paper's axis, not as a measurement.
//!
//! The claim to check is the *shape*: proposed-CPU ≥ original-CPU, FPGA
//! far ahead of the embedded CPU, and the FPGA advantage growing with the
//! embedding dimension.

use seqge_bench::{banner, prepared_walks, time_walk_training, write_json, Args};
use seqge_core::{OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig};
use seqge_fpga::report::{ms, speedup, TextTable};
use seqge_fpga::TimingModel;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

/// Geometric mean of the paper's per-entry Cortex-A53 / Core-i7 time ratios
/// (Table 3 vs Table 4: 27.0, 43.7, 61.5 for the original model; 23.8, 25.2,
/// 30.3 for the proposed — pooled geomean ≈ 33).
const A53_OVER_HOST: f64 = 33.0;

/// Paper Table 3 rows: (dim, original A53 ms, proposed A53 ms, FPGA ms).
const PAPER: [(usize, f64, f64, f64); 3] = [
    (32, 35.357, 18.753, 0.777),
    (64, 100.291, 35.941, 0.878),
    (96, 202.175, 72.612, 0.985),
];

fn main() {
    let args = Args::parse(1.0);
    banner("Table 3 — training time of a single random walk (embedded CPU vs FPGA)", args.scale);

    // Timing only needs one dataset's walks; graph size affects table build,
    // not the per-walk training cost. Cora at full scale is cheap.
    let cfg32 = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, args.scale.min(1.0), &cfg32, args.seed);
    let walks: Vec<_> = prep.walks.iter().take(400).cloned().collect();
    let timing = TimingModel::default();

    let mut table = TextTable::new([
        "d",
        "orig host ms",
        "prop host ms",
        "orig A53* ms",
        "prop A53* ms",
        "FPGA-sim ms",
        "FPGA vs orig A53*",
        "FPGA vs prop A53*",
        "paper: orig/prop/FPGA",
    ]);
    let mut json_rows = Vec::new();

    for &dim in &args.dims {
        let cfg = TrainConfig::paper_defaults(dim);
        let mut rng = Rng64::seed_from_u64(args.seed);

        let mut orig = SkipGram::new(prep.graph.num_nodes(), cfg.model);
        let t_orig = time_walk_training(&mut orig, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        let mut prop = OsElmSkipGram::new(prep.graph.num_nodes(), ocfg);
        let t_prop = time_walk_training(&mut prop, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let t_fpga = timing.paper_walk_millis(dim);
        let a53_orig = t_orig * A53_OVER_HOST;
        let a53_prop = t_prop * A53_OVER_HOST;

        let paper = PAPER.iter().find(|p| p.0 == dim);
        table.row([
            dim.to_string(),
            ms(t_orig),
            ms(t_prop),
            ms(a53_orig),
            ms(a53_prop),
            ms(t_fpga),
            speedup(a53_orig / t_fpga),
            speedup(a53_prop / t_fpga),
            paper.map_or("-".into(), |p| format!("{}/{}/{}", p.1, p.2, p.3)),
        ]);
        json_rows.push(serde_json::json!({
            "dim": dim,
            "original_host_ms": t_orig,
            "proposed_host_ms": t_prop,
            "a53_scale_factor": A53_OVER_HOST,
            "fpga_sim_ms": t_fpga,
            "paper": paper.map(|p| serde_json::json!({"orig_a53": p.1, "prop_a53": p.2, "fpga": p.3})),
        }));
    }

    println!("{}", table.render());
    println!("*A53 columns are host measurements scaled by the documented {A53_OVER_HOST}x factor");
    println!(" (paper speedups: FPGA vs original-A53 45.5x / 114.2x / 205.3x;");
    println!("  FPGA vs proposed-A53 24.1x / 40.9x / 73.7x)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
