//! Table 3 — training time of a single random walk, embedded-class CPU vs
//! the FPGA accelerator.
//!
//! The paper measures an ARM Cortex-A53 @1.2 GHz against the ZCU104 PL.
//! Neither is available here, so (substitution, DESIGN.md §1):
//!
//! * the two software models are *measured* on the host CPU;
//! * the FPGA row comes from the calibrated cycle model;
//! * an "A53-projected" column scales the host measurements by a single
//!   documented factor derived from the paper's own Table 3 / Table 4 pair
//!   (the geometric mean of the per-entry A53/i7 ratios, ≈ 29×) — it exists
//!   to put the speedup columns on the paper's axis, not as a measurement.
//!
//! The claim to check is the *shape*: proposed-CPU ≥ original-CPU, FPGA
//! far ahead of the embedded CPU, and the FPGA advantage growing with the
//! embedding dimension.
//!
//! A second section records host-pipeline throughput (serial vs overlapped
//! walk-generation/training, and both vs the pre-vectorization reference
//! kernels) into `results/bench_pipeline.json`.

use seqge_bench::{banner, prepared_walks, time_walk_training, write_json, Args};
use seqge_core::{
    train_all_pipelined, train_all_scenario, OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig,
};
use seqge_fpga::report::{ms, speedup, TextTable};
use seqge_fpga::TimingModel;
use seqge_graph::Dataset;
use seqge_sampling::{contexts, Rng64};
use std::path::Path;
use std::time::Instant;

/// Geometric mean of the paper's per-entry Cortex-A53 / Core-i7 time ratios
/// (Table 3 vs Table 4: 27.0, 43.7, 61.5 for the original model; 23.8, 25.2,
/// 30.3 for the proposed — pooled geomean ≈ 33).
const A53_OVER_HOST: f64 = 33.0;

/// Paper Table 3 rows: (dim, original A53 ms, proposed A53 ms, FPGA ms).
const PAPER: [(usize, f64, f64, f64); 3] =
    [(32, 35.357, 18.753, 0.777), (64, 100.291, 35.941, 0.878), (96, 202.175, 72.612, 0.985)];

fn main() {
    let args = Args::parse(1.0);
    banner("Table 3 — training time of a single random walk (embedded CPU vs FPGA)", args.scale);

    // Timing only needs one dataset's walks; graph size affects table build,
    // not the per-walk training cost. Cora at full scale is cheap.
    let cfg32 = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, args.scale.min(1.0), &cfg32, args.seed);
    let walks: Vec<_> = prep.walks.iter().take(400).cloned().collect();
    let timing = TimingModel::default();

    let mut table = TextTable::new([
        "d",
        "orig host ms",
        "prop host ms",
        "orig A53* ms",
        "prop A53* ms",
        "FPGA-sim ms",
        "FPGA vs orig A53*",
        "FPGA vs prop A53*",
        "paper: orig/prop/FPGA",
    ]);
    let mut json_rows = Vec::new();

    for &dim in &args.dims {
        let cfg = TrainConfig::paper_defaults(dim);
        let mut rng = Rng64::seed_from_u64(args.seed);

        let mut orig = SkipGram::new(prep.graph.num_nodes(), cfg.model);
        let t_orig = time_walk_training(&mut orig, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        let mut prop = OsElmSkipGram::new(prep.graph.num_nodes(), ocfg);
        let t_prop = time_walk_training(&mut prop, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let t_fpga = timing.paper_walk_millis(dim);
        let a53_orig = t_orig * A53_OVER_HOST;
        let a53_prop = t_prop * A53_OVER_HOST;

        let paper = PAPER.iter().find(|p| p.0 == dim);
        table.row([
            dim.to_string(),
            ms(t_orig),
            ms(t_prop),
            ms(a53_orig),
            ms(a53_prop),
            ms(t_fpga),
            speedup(a53_orig / t_fpga),
            speedup(a53_prop / t_fpga),
            paper.map_or("-".into(), |p| format!("{}/{}/{}", p.1, p.2, p.3)),
        ]);
        json_rows.push(serde_json::json!({
            "dim": dim,
            "original_host_ms": t_orig,
            "proposed_host_ms": t_prop,
            "a53_scale_factor": A53_OVER_HOST,
            "fpga_sim_ms": t_fpga,
            "paper": paper.map(|p| serde_json::json!({"orig_a53": p.1, "prop_a53": p.2, "fpga": p.3})),
        }));
    }

    println!("{}", table.render());
    println!("*A53 columns are host measurements scaled by the documented {A53_OVER_HOST}x factor");
    println!(" (paper speedups: FPGA vs original-A53 45.5x / 114.2x / 205.3x;");
    println!("  FPGA vs proposed-A53 24.1x / 40.9x / 73.7x)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }

    pipeline_throughput(&args);
}

/// Host-pipeline throughput record at the acceptance dimension (d = 32):
/// the serial generate-then-train scenario, the overlapped pipeline, and
/// the seed's pre-vectorization kernels as the reference baseline. The
/// record lands in `results/bench_pipeline.json`.
fn pipeline_throughput(args: &Args) {
    let dim = 32usize;
    let cfg = TrainConfig::paper_defaults(dim);
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
    // A 0.3-scale Cora keeps the three full-corpus arms to seconds while
    // the per-walk costs (what the ratios measure) are scale-free.
    let scale = args.scale.min(0.3);
    let g = Dataset::Cora.generate_scaled(scale, args.seed);
    let n = g.num_nodes();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!("host pipeline throughput (d={dim}, Cora scale {scale}, {threads} thread(s)):");

    let t = Instant::now();
    let mut serial = OsElmSkipGram::new(n, ocfg);
    train_all_scenario(&g, &mut serial, &cfg, args.seed);
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let mut piped = OsElmSkipGram::new(n, ocfg);
    let outcome = train_all_pipelined(&g, &mut piped, &cfg, args.seed, 0);
    let pipelined_ms = t.elapsed().as_secs_f64() * 1e3;

    // Reference baseline: same corpus, trained with the sequential-fold /
    // multi-pass kernels the vectorized hot path replaced. The two arms
    // alternate in walk chunks so slow clock drift (thermal throttling on
    // small boxes) hits both equally instead of whichever runs second.
    let prep = prepared_walks(Dataset::Cora, scale, &cfg, args.seed);
    let num_contexts: usize = prep.walks.iter().map(|w| contexts(w, cfg.model.window).len()).sum();
    let mut rng_ref = Rng64::seed_from_u64(args.seed);
    let mut rng_vec = Rng64::seed_from_u64(args.seed);
    let mut reference = refmodel::RefOsElm::new(n, ocfg);
    let mut vectorized = OsElmSkipGram::new(n, ocfg);
    let mut reference_train_ms = 0.0f64;
    let mut vectorized_train_ms = 0.0f64;
    for chunk in prep.walks.chunks(256) {
        let t = Instant::now();
        for w in chunk {
            reference.train_walk(w, &prep.table, &mut rng_ref);
        }
        reference_train_ms += t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        for w in chunk {
            use seqge_core::model::EmbeddingModel;
            vectorized.train_walk(w, &prep.table, &mut rng_vec);
        }
        vectorized_train_ms += t.elapsed().as_secs_f64() * 1e3;
    }

    let kernel_speedup = reference_train_ms / vectorized_train_ms;
    let walks_per_sec = outcome.walks_trained as f64 / (pipelined_ms / 1e3);
    let contexts_per_sec = num_contexts as f64 / (vectorized_train_ms / 1e3);
    // The PR's composite claim: seed implementation (serial generation +
    // pre-vectorization kernels) vs this PR (pipelined generation + fused
    // kernels). Generation time is the pipeline's measured gen-busy time.
    // `end_to_end_speedup_vs_seed` is what this host actually runs
    // (single-core: generation serializes); the `_multicore` figure is the
    // same arithmetic with generation hidden behind training, which is what
    // a host with ≥ 2 cores overlaps (gen:train is ~1:20+, so hiding is
    // total there).
    let seed_end_to_end_ms = outcome.gen_busy_ms + reference_train_ms;
    let e2e_speedup = seed_end_to_end_ms / (outcome.gen_busy_ms + vectorized_train_ms);
    let e2e_speedup_multicore = seed_end_to_end_ms / outcome.gen_busy_ms.max(vectorized_train_ms);
    println!(
        "  serial     {serial_ms:8.1} ms   pipelined {pipelined_ms:8.1} ms   overlap {:.3}",
        outcome.overlap_ratio()
    );
    println!(
        "  train-only {vectorized_train_ms:8.1} ms   reference {reference_train_ms:8.1} ms   kernel speedup {kernel_speedup:.2}x"
    );
    println!(
        "  vs seed end-to-end: {e2e_speedup:.2}x here, {e2e_speedup_multicore:.2}x with generation overlapped"
    );
    println!("  {walks_per_sec:.0} walks/s, {contexts_per_sec:.0} contexts/s");

    let record = serde_json::json!({
        "dim": dim,
        "dataset": "cora",
        "scale": scale,
        "host_threads": threads,
        "pipeline_threads": outcome.threads,
        "serial_end_to_end_ms": serial_ms,
        "pipelined_end_to_end_ms": pipelined_ms,
        "overlap_ratio": outcome.overlap_ratio(),
        "gen_busy_ms": outcome.gen_busy_ms,
        "train_busy_ms": outcome.train_busy_ms,
        "walks_trained": outcome.walks_trained,
        "walks_per_sec": walks_per_sec,
        "contexts_per_sec": contexts_per_sec,
        "train_only_ms": vectorized_train_ms,
        "reference_kernels_train_ms": reference_train_ms,
        "speedup_vs_reference_kernels": kernel_speedup,
        "seed_end_to_end_ms": seed_end_to_end_ms,
        "end_to_end_speedup_vs_seed": e2e_speedup,
        "end_to_end_speedup_vs_seed_multicore": e2e_speedup_multicore,
        "note": "reference = seed's sequential-fold/multi-pass kernels, \
                 interleaved with the fused arm in 256-walk chunks so clock \
                 drift hits both equally; on a single-core host the pipeline \
                 overlaps nothing, so the end-to-end gain is carried by the \
                 kernel speedup — the _multicore figure hides generation \
                 behind training as a >=2-core host does",
    });
    let path = Path::new("results/bench_pipeline.json");
    write_json(path, &record).expect("write pipeline json");
    println!("  record written to {}", path.display());
}

/// The seed's pre-vectorization OS-ELM trainer: sequential-fold dots,
/// scalar axpy, and the row-loop `P` downdate — the baseline the fused /
/// unrolled kernels are measured against. Kept runnable so the recorded
/// speedup stays reproducible on any host.
mod refmodel {
    use seqge_core::model::{init_weight, NegativeDraw};
    use seqge_core::OsElmConfig;
    use seqge_graph::NodeId;
    use seqge_linalg::{ops, Mat};
    use seqge_sampling::{contexts, NegativeTable, Rng64};

    fn axpy_ref(a: f32, x: &[f32], y: &mut [f32]) {
        for i in 0..x.len() {
            y[i] += a * x[i];
        }
    }

    pub struct RefOsElm {
        beta_t: Mat<f32>,
        p: Mat<f32>,
        cfg: OsElmConfig,
        draw: NegativeDraw,
        h: Vec<f32>,
        ph: Vec<f32>,
        phn: Vec<f32>,
    }

    impl RefOsElm {
        pub fn new(n: usize, cfg: OsElmConfig) -> Self {
            let d = cfg.model.dim;
            let mut rng = Rng64::seed_from_u64(cfg.model.seed);
            let beta_t = Mat::from_fn(n, d, |_, _| init_weight(&mut rng, d));
            RefOsElm {
                beta_t,
                p: Mat::scaled_identity(d, cfg.p0_scale),
                draw: NegativeDraw::new(&cfg.model),
                h: vec![0.0; d],
                ph: vec![0.0; d],
                phn: vec![0.0; d],
                cfg,
            }
        }

        pub fn train_walk(&mut self, walk: &[NodeId], table: &NegativeTable, rng: &mut Rng64) {
            let d = self.cfg.model.dim;
            let ctxs = contexts(walk, self.cfg.model.window);
            self.draw.begin_walk(walk, table, rng);
            let mut samples: Vec<(NodeId, f32)> = Vec::new();
            for ctx in &ctxs {
                samples.clear();
                for &pos in &ctx.positives {
                    samples.push((pos, 1.0));
                    for &neg in self.draw.for_positive(pos, table, rng) {
                        samples.push((neg, 0.0));
                    }
                }
                let brow = self.beta_t.row(ctx.center as usize);
                for (hi, &bi) in self.h.iter_mut().zip(brow) {
                    *hi = self.cfg.mu * bi;
                }
                for r in 0..d {
                    self.ph[r] = ops::dot_ref(self.p.row(r), &self.h);
                }
                let hph = ops::dot_ref(&self.h, &self.ph);
                let denom = self.cfg.forgetting + hph;
                let inv = 1.0 / denom;
                let phc = self.ph.clone();
                for r in 0..d {
                    axpy_ref(-inv * phc[r], &phc, self.p.row_mut(r));
                }
                let rescale = 1.0 - hph / denom;
                for i in 0..d {
                    self.phn[i] = self.ph[i] * rescale;
                }
                for &(sample, y) in &samples {
                    let col = self.beta_t.row_mut(sample as usize);
                    let e = y - ops::dot_ref(&self.h, col);
                    axpy_ref(e, &self.phn, col);
                }
            }
        }
    }
}
