//! Figure 4 — impact of the dataflow optimization on accuracy.
//!
//! Compares the proposed model on "CPU" (Algorithm 1, float) against the
//! "FPGA" implementation (Algorithm 2 with deferred ΔP/Δβ, Q8.24 fixed
//! point) in the "all" scenario. Paper: ≤1.09 % F1 drop on cora, no drop on
//! the two larger datasets.

use rayon::prelude::*;
use seqge_bench::{banner, prepared_walks, write_json, Args};
use seqge_core::model::EmbeddingModel;
use seqge_core::{OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_fpga::Accelerator;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

fn main() {
    let args = Args::parse(0.15);
    banner("Figure 4 — dataflow optimization (CPU Alg.1 vs FPGA Alg.2/fixed-point)", args.scale);

    let mut combos: Vec<(Dataset, usize)> = Vec::new();
    for ds in args.selected_datasets() {
        for &dim in &args.dims {
            combos.push((ds, dim));
        }
    }

    let results: Vec<_> = combos
        .par_iter()
        .map(|&(ds, dim)| {
            let cfg = TrainConfig::paper_defaults(dim);
            let prep = prepared_walks(ds, args.scale, &cfg, args.seed);
            let labels = prep.graph.labels().expect("labelled dataset").to_vec();
            let classes = prep.graph.num_classes();
            let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
            let ecfg = EvalConfig::default();

            let mut cpu = OsElmSkipGram::new(prep.graph.num_nodes(), ocfg);
            let mut rng = Rng64::seed_from_u64(args.seed);
            for w in &prep.walks {
                cpu.train_walk(w, &prep.table, &mut rng);
            }
            let f_cpu = evaluate_embedding(&cpu.embedding(), &labels, classes, &ecfg, args.seed);

            let mut fpga = Accelerator::new(prep.graph.num_nodes(), ocfg);
            let mut rng = Rng64::seed_from_u64(args.seed);
            for w in &prep.walks {
                fpga.train_walk(w, &prep.table, &mut rng);
            }
            let f_fpga = evaluate_embedding(&fpga.embedding(), &labels, classes, &ecfg, args.seed);

            (ds, dim, f_cpu.micro_f1, f_fpga.micro_f1, fpga.stats.saturations)
        })
        .collect();

    let mut t = TextTable::new(["dataset", "d", "CPU F1", "FPGA F1", "delta", "saturations"]);
    let mut json_rows = Vec::new();
    for (ds, dim, cpu, fpga, sat) in &results {
        t.row([
            ds.short_name().to_string(),
            dim.to_string(),
            format!("{cpu:.4}"),
            format!("{fpga:.4}"),
            format!("{:+.4}", fpga - cpu),
            sat.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "dataset": ds.short_name(), "dim": dim,
            "cpu_f1": cpu, "fpga_f1": fpga, "delta": fpga - cpu,
        }));
    }
    println!("{}", t.render());
    println!("(paper: FPGA loses up to 1.09% F1 on cora, none on ampt/amcp)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
