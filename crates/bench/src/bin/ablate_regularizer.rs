//! Ablation — the OS-ELM update denominator.
//!
//! Algorithm 1 line 5 literally reads `hpht_inv ← 1/(H·P·Hᵀ)`; the standard
//! OS-ELM (Liang et al. \[5\]) uses `1/(1 + H·P·Hᵀ)` (Sherman–Morrison with
//! the identity regularizer). The bare form makes the rank-1 downdate
//! project `P` to singularity along `H` and training collapses — this
//! binary demonstrates why the reproduction defaults to the regularized
//! form (DESIGN.md §1 "Faithfulness notes").
//!
//! A second section ablates the Algorithm-2 `ΔP` visibility model
//! ([`seqge_core::PVisibility`]): whole-walk freezing (the literal reading)
//! vs pipeline-register forwarding (the stable reading this repo defaults
//! to).

use seqge_bench::{banner, prepared_walks, write_json, Args};
use seqge_core::model::EmbeddingModel;
use seqge_core::{DataflowOsElm, OsElmConfig, OsElmSkipGram, PVisibility, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

fn main() {
    let args = Args::parse(0.15);
    banner("Ablation — update denominator & ΔP visibility (d=32, cora)", args.scale);
    let dim = 32;
    let cfg = TrainConfig::paper_defaults(dim);
    let prep = prepared_walks(Dataset::Cora, args.scale, &cfg, args.seed);
    let labels = prep.graph.labels().expect("labelled").to_vec();
    let classes = prep.graph.num_classes();
    let n = prep.graph.num_nodes();
    let ecfg = EvalConfig::default();
    let mut json_rows = Vec::new();

    let mut t = TextTable::new(["denominator", "F1", "finite", "clamped updates"]);
    for (name, regularized) in [("1 + HPH^T (standard)", true), ("HPH^T (paper-literal)", false)] {
        let ocfg =
            OsElmConfig { model: cfg.model, regularized, ..OsElmConfig::paper_defaults(dim) };
        let mut m = OsElmSkipGram::new(n, ocfg);
        let mut rng = Rng64::seed_from_u64(args.seed);
        for w in &prep.walks {
            m.train_walk(w, &prep.table, &mut rng);
        }
        let finite = m.beta_t().all_finite() && m.p().all_finite();
        let f1 = if finite {
            evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed).micro_f1
        } else {
            f64::NAN
        };
        t.row([
            name.to_string(),
            if finite { format!("{f1:.4}") } else { "diverged".into() },
            finite.to_string(),
            m.clamped_updates().to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "denominator": name, "f1": if finite { Some(f1) } else { None },
            "finite": finite, "clamped": m.clamped_updates(),
        }));
    }
    println!("{}", t.render());

    let mut t2 = TextTable::new(["dP visibility", "F1", "finite", "guarded downdates"]);
    for (name, vis) in [
        ("pipeline-register (default)", PVisibility::Running),
        ("whole-walk freeze (literal)", PVisibility::PerWalk),
    ] {
        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        let mut m = DataflowOsElm::new(n, ocfg).with_p_visibility(vis);
        let mut rng = Rng64::seed_from_u64(args.seed);
        for w in &prep.walks {
            m.train_walk(w, &prep.table, &mut rng);
        }
        let finite = m.beta_t().all_finite() && m.p().all_finite();
        let f1 = if finite {
            evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed).micro_f1
        } else {
            f64::NAN
        };
        t2.row([
            name.to_string(),
            if finite { format!("{f1:.4}") } else { "diverged".into() },
            finite.to_string(),
            m.guarded_updates().to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "p_visibility": name, "f1": if finite { Some(f1) } else { None },
            "finite": finite, "guarded": m.guarded_updates(),
        }));
    }
    println!("{}", t2.render());
    println!("(expectation: the standard denominator and pipeline-register visibility are");
    println!(" required for stable sequential training; the literal readings degrade)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
