//! Hyper-parameter sweep (extension): the paper fixes `l = 80, w = 8,
//! ns = 10` (Table 2) without justification. This binary sweeps each knob
//! around the paper's point and reports both downstream F1 and the modeled
//! FPGA walk latency, exposing the cost/accuracy surface the choice sits on
//! (walk latency scales with contexts × samples; accuracy saturates).

use rayon::prelude::*;
use seqge_bench::{banner, write_json, Args};
use seqge_core::{train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::{ms, TextTable};
use seqge_fpga::{AcceleratorDesign, TimingModel};
use seqge_graph::Dataset;

fn main() {
    let args = Args::parse(0.2);
    banner("Hyper-parameter sweep — accuracy vs modeled FPGA cost (cora, d=32)", args.scale);
    let dim = 32;
    let g = Dataset::Cora.generate_scaled(args.scale, args.seed);
    let labels = g.labels().expect("labelled").to_vec();
    let classes = g.num_classes();
    let ecfg = EvalConfig::default();
    let timing = TimingModel::default();
    let design = AcceleratorDesign::for_dim(dim);

    // (l, w, ns) grid: one axis varies at a time around Table 2's point.
    let paper = (80usize, 8usize, 10usize);
    let mut grid = vec![paper];
    for l in [20usize, 40, 160] {
        grid.push((l, paper.1, paper.2));
    }
    for w in [4usize, 16] {
        grid.push((paper.0, w, paper.2));
    }
    for ns in [2usize, 5, 20] {
        grid.push((paper.0, paper.1, ns));
    }

    let results: Vec<_> = grid
        .par_iter()
        .map(|&(l, w, ns)| {
            let mut cfg = TrainConfig::paper_defaults(dim);
            cfg.walk.walk_length = l;
            cfg.model.window = w.min(l);
            cfg.model.negative_samples = ns;
            let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
            let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
            train_all_scenario(&g, &mut m, &cfg, args.seed);
            let f1 =
                evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed).micro_f1;
            // Modeled FPGA cost of one walk at these knobs.
            let contexts = l.saturating_sub(cfg.model.window) + 1;
            let samples = (cfg.model.window - 1) * (ns + 1);
            let walk_ms = timing.walk_timing(&design, contexts, samples).millis(timing.clock_mhz);
            (l, w, ns, f1, walk_ms)
        })
        .collect();

    let mut t = TextTable::new(["l", "w", "ns", "F1", "FPGA ms/walk", "note"]);
    let mut json_rows = Vec::new();
    for &(l, w, ns, f1, walk_ms) in &results {
        t.row([
            l.to_string(),
            w.to_string(),
            ns.to_string(),
            format!("{f1:.4}"),
            ms(walk_ms),
            if (l, w, ns) == paper { "Table 2".into() } else { String::new() },
        ]);
        json_rows.push(serde_json::json!({
            "l": l, "w": w, "ns": ns, "f1": f1, "fpga_walk_ms": walk_ms,
        }));
    }
    println!("{}", t.render());
    println!("(expectation: accuracy saturates near the paper's point while FPGA cost");
    println!(" keeps scaling with l·w·ns — Table 2 sits at a sensible knee)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
