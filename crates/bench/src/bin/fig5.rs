//! Figure 5 — impact of sequential training on accuracy.
//!
//! Four bars per (dataset, dimension): {Original, Proposed} × {all, seq}.
//! Paper claims: in "all" the original wins; in "seq" the original drops
//! (catastrophic forgetting under backprop) while the proposed model *gains*
//! (it sees strictly more training walks and OS-ELM folds them in without
//! forgetting).

use rayon::prelude::*;
use seqge_bench::{banner, write_json, Args};
use seqge_core::{
    train_all_scenario, train_seq_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, SkipGram,
    TrainConfig,
};
use seqge_eval::{evaluate_embedding, EvalConfig, EvalResult};
use seqge_fpga::report::TextTable;
use seqge_graph::Dataset;
use seqge_sampling::UpdatePolicy;

fn main() {
    let args = Args::parse(0.12);
    banner("Figure 5 — sequential training (Original vs Proposed × all vs seq)", args.scale);
    // Fraction of removed edges replayed in "seq" (each insertion costs two
    // walks + training). Full protocol = 1.0; scaled runs replay fewer.
    let edge_fraction: f64 =
        args.extra("edges").map(|s| s.parse().expect("--edges f")).unwrap_or(1.0);
    // RLS forgetting factor for the proposed model (both scenarios, so the
    // comparison is fair). Plain OS-ELM (λ=1) loses its learning gain over
    // the long seq phase — DESIGN.md §1 "Faithfulness notes".
    let forgetting: f32 =
        args.extra("forgetting").map(|s| s.parse().expect("--forgetting f")).unwrap_or(0.9995);

    let mut combos: Vec<(Dataset, usize)> = Vec::new();
    for ds in args.selected_datasets() {
        for &dim in &args.dims {
            combos.push((ds, dim));
        }
    }

    let results: Vec<_> = combos
        .par_iter()
        .map(|&(ds, dim)| {
            let cfg = TrainConfig::paper_defaults(dim);
            let g = if args.scale >= 1.0 {
                ds.generate(args.seed)
            } else {
                ds.generate_scaled(args.scale, args.seed)
            };
            let labels = g.labels().expect("labelled").to_vec();
            let classes = g.num_classes();
            let n = g.num_nodes();
            let ocfg =
                OsElmConfig { model: cfg.model, forgetting, ..OsElmConfig::paper_defaults(dim) };
            let ecfg = EvalConfig::default();
            let eval = |emb: &seqge_linalg::Mat<f32>| -> EvalResult {
                evaluate_embedding(emb, &labels, classes, &ecfg, args.seed)
            };

            // Original, all.
            let mut m = SkipGram::new(n, cfg.model);
            train_all_scenario(&g, &mut m, &cfg, args.seed);
            let orig_all = eval(&m.embedding()).micro_f1;
            // Original, seq.
            let mut m = SkipGram::new(n, cfg.model);
            let _ = train_seq_scenario(
                &g,
                &mut m,
                &cfg,
                UpdatePolicy::every_edge(),
                args.seed,
                edge_fraction,
            );
            let orig_seq = eval(&m.embedding()).micro_f1;
            // Proposed, all.
            let mut m = OsElmSkipGram::new(n, ocfg);
            train_all_scenario(&g, &mut m, &cfg, args.seed);
            let prop_all = eval(&m.embedding()).micro_f1;
            // Proposed, seq.
            let mut m = OsElmSkipGram::new(n, ocfg);
            let _ = train_seq_scenario(
                &g,
                &mut m,
                &cfg,
                UpdatePolicy::every_edge(),
                args.seed,
                edge_fraction,
            );
            let prop_seq = eval(&m.embedding()).micro_f1;

            (ds, dim, orig_all, orig_seq, prop_all, prop_seq)
        })
        .collect();

    let mut t = TextTable::new([
        "dataset",
        "d",
        "Original all",
        "Original seq",
        "Proposed all",
        "Proposed seq",
        "orig drop",
        "prop gain",
    ]);
    let mut json_rows = Vec::new();
    for &(ds, dim, oa, os, pa, ps) in &results {
        t.row([
            ds.short_name().to_string(),
            dim.to_string(),
            format!("{oa:.4}"),
            format!("{os:.4}"),
            format!("{pa:.4}"),
            format!("{ps:.4}"),
            format!("{:+.4}", os - oa),
            format!("{:+.4}", ps - pa),
        ]);
        json_rows.push(serde_json::json!({
            "dataset": ds.short_name(), "dim": dim,
            "original_all": oa, "original_seq": os,
            "proposed_all": pa, "proposed_seq": ps,
        }));
    }
    println!("{}", t.render());
    println!("(paper: original drops in seq — catastrophic forgetting; proposed seq ≥ all)");
    println!("(proposed model runs with RLS forgetting λ={forgetting}; λ=1 is paper-literal");
    println!(" but its learning gain decays to zero over the seq phase — see DESIGN.md)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
