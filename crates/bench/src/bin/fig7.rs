//! Figure 7 — impact of the sampling-table update frequency (d = 32).
//!
//! In the "seq" scenario the Walker-alias negative table can be rebuilt
//! every k inserted edges. Paper shape: k = 1 ≈ k = 100 ≫ k = 10 000 ≈
//! never, with the penalty growing on larger graphs.

use rayon::prelude::*;
use seqge_bench::{banner, write_json, Args};
use seqge_core::{train_seq_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_sampling::UpdatePolicy;

fn main() {
    let args = Args::parse(0.12);
    banner("Figure 7 — sampling-table update frequency in the seq scenario (d=32)", args.scale);
    let edge_fraction: f64 =
        args.extra("edges").map(|s| s.parse().expect("--edges f")).unwrap_or(1.0);
    let dim = 32;
    // The paper sweeps {1, 100, 10000, no_update}; at reduced scale the
    // stream is shorter, so scale the large period proportionally too.
    let policies: Vec<(String, UpdatePolicy)> = vec![
        ("every 1".into(), UpdatePolicy::EveryEdges(1)),
        ("every 100".into(), UpdatePolicy::EveryEdges(100)),
        ("every 10000".into(), UpdatePolicy::EveryEdges(10_000)),
        ("no_update".into(), UpdatePolicy::Never),
    ];

    let selected = args.selected_datasets();
    let results: Vec<_> = selected
        .par_iter()
        .map(|&ds| {
            let cfg = TrainConfig::paper_defaults(dim);
            let g = if args.scale >= 1.0 {
                ds.generate(args.seed)
            } else {
                ds.generate_scaled(args.scale, args.seed)
            };
            let labels = g.labels().expect("labelled").to_vec();
            let classes = g.num_classes();
            let ecfg = EvalConfig::default();
            let ocfg = OsElmConfig {
                model: cfg.model,
                forgetting: 0.9995, // seq scenario needs a live learning gain
                ..OsElmConfig::paper_defaults(dim)
            };

            let scores: Vec<(String, f64, u64)> = policies
                .par_iter()
                .map(|(name, policy)| {
                    let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
                    let (_, outcome) =
                        train_seq_scenario(&g, &mut m, &cfg, *policy, args.seed, edge_fraction);
                    let f = evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed);
                    (name.clone(), f.micro_f1, outcome.table_rebuilds)
                })
                .collect();
            (ds, scores)
        })
        .collect();

    let mut header: Vec<String> = vec!["dataset".into()];
    for (name, _) in &policies {
        header.push(name.clone());
        header.push(format!("{name} rebuilds"));
    }
    let mut t = TextTable::new(header);
    let mut json_rows = Vec::new();
    for (ds, scores) in &results {
        let mut row = vec![ds.short_name().to_string()];
        for (_, f1, rebuilds) in scores {
            row.push(format!("{f1:.4}"));
            row.push(rebuilds.to_string());
        }
        t.row(row);
        json_rows.push(serde_json::json!({
            "dataset": ds.short_name(),
            "policies": scores.iter().map(|(n, f, r)| serde_json::json!({
                "policy": n, "f1": f, "rebuilds": r
            })).collect::<Vec<_>>(),
        }));
    }
    println!("{}", t.render());
    println!("(paper: every 1 ≈ every 100 ≫ every 10000 ≈ no_update; worse on larger graphs)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
