//! Figure 6 — impact of the scale factor μ on accuracy (d = 32).
//!
//! Sweeps μ over the paper's range and adds the "alpha" baseline (classic
//! OS-ELM with a fixed random input matrix). Paper shape: collapse at
//! μ = 0.001, high plateau for 0.005–0.1, gradual decay above 0.1, and the
//! alpha baseline below the plateau.
//!
//! `--source input|output|average` additionally ablates §3.1's choice of
//! which weights to read the embedding from (applies to the alpha baseline).

use rayon::prelude::*;
use seqge_bench::{banner, prepared_walks, write_json, Args};
use seqge_core::embedding::{alpha_embedding, EmbeddingSource};
use seqge_core::model::EmbeddingModel;
use seqge_core::{AlphaOsElm, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_sampling::Rng64;

const MUS: [f32; 7] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

fn main() {
    let args = Args::parse(0.15);
    banner("Figure 6 — scale factor mu sweep at d=32 (+ alpha baseline)", args.scale);
    let source = match args.extra("source").unwrap_or("output") {
        "input" => EmbeddingSource::Input,
        "output" => EmbeddingSource::Output,
        "average" => EmbeddingSource::Average,
        other => panic!("--source must be input|output|average, got {other}"),
    };
    let dim = 32;

    let selected = args.selected_datasets();
    let results: Vec<_> = selected
        .par_iter()
        .map(|&ds| {
            let cfg = TrainConfig::paper_defaults(dim);
            let prep = prepared_walks(ds, args.scale, &cfg, args.seed);
            let labels = prep.graph.labels().expect("labelled").to_vec();
            let classes = prep.graph.num_classes();
            let ecfg = EvalConfig::default();
            let n = prep.graph.num_nodes();

            let mu_scores: Vec<(f32, f64)> = MUS
                .par_iter()
                .map(|&mu| {
                    let ocfg =
                        OsElmConfig { model: cfg.model, mu, ..OsElmConfig::paper_defaults(dim) };
                    let mut m = OsElmSkipGram::new(n, ocfg);
                    let mut rng = Rng64::seed_from_u64(args.seed);
                    for w in &prep.walks {
                        m.train_walk(w, &prep.table, &mut rng);
                    }
                    let f = evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed);
                    (mu, f.micro_f1)
                })
                .collect();

            // Alpha baseline (no μ; fixed random input weights).
            let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
            let mut alpha = AlphaOsElm::new(n, ocfg);
            let mut rng = Rng64::seed_from_u64(args.seed);
            for w in &prep.walks {
                alpha.train_walk(w, &prep.table, &mut rng);
            }
            let emb = alpha_embedding(&alpha, source);
            let alpha_f1 = evaluate_embedding(&emb, &labels, classes, &ecfg, args.seed).micro_f1;

            (ds, mu_scores, alpha_f1)
        })
        .collect();

    let mut header: Vec<String> = vec!["dataset".into()];
    header.extend(MUS.iter().map(|m| format!("mu={m}")));
    header.push("alpha".into());
    let mut t = TextTable::new(header);
    let mut json_rows = Vec::new();
    for (ds, scores, alpha_f1) in &results {
        let mut row = vec![ds.short_name().to_string()];
        row.extend(scores.iter().map(|(_, f)| format!("{f:.4}")));
        row.push(format!("{alpha_f1:.4}"));
        t.row(row);
        json_rows.push(serde_json::json!({
            "dataset": ds.short_name(),
            "mu_f1": scores.iter().map(|(m, f)| serde_json::json!({"mu": m, "f1": f})).collect::<Vec<_>>(),
            "alpha_f1": alpha_f1,
            "alpha_embedding_source": format!("{source:?}"),
        }));
    }
    println!("{}", t.render());
    println!("(paper: collapse at mu=0.001; high plateau 0.005–0.1; gradual decay >0.1;");
    println!(" alpha baseline below the plateau)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
