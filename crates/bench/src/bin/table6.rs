//! Table 6 — FPGA resource utilization on the XCZU7EV.
//!
//! Regenerated from the component-level estimator (`seqge_fpga::resources`),
//! which is calibrated to reproduce the paper's Vivado reports exactly at
//! d ∈ {32, 64, 96} and interpolates elsewhere.

use seqge_bench::{banner, write_json, Args};
use seqge_fpga::report::{pct, TextTable};
use seqge_fpga::resources::PAPER_TABLE6;
use seqge_fpga::{estimate_resources, AcceleratorDesign, FpgaDevice};

fn main() {
    let args = Args::parse(1.0);
    banner("Table 6 — resource utilization on XCZU7EV", args.scale);
    let dev = FpgaDevice::XCZU7EV;

    let mut t = TextTable::new([
        "d",
        "BRAM",
        "BRAM%",
        "DSP",
        "DSP%",
        "FF",
        "FF%",
        "LUT",
        "LUT%",
        "calibrated",
    ]);
    let mut json_rows = Vec::new();
    for &dim in &args.dims {
        let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
        let u = est.utilization(&dev);
        t.row([
            dim.to_string(),
            est.bram36.to_string(),
            pct(u.bram_pct),
            est.dsp.to_string(),
            pct(u.dsp_pct),
            est.ff.to_string(),
            pct(u.ff_pct),
            est.lut.to_string(),
            pct(u.lut_pct),
            if est.calibrated { "yes".into() } else { "interp".to_string() },
        ]);
        json_rows.push(serde_json::json!({ "dim": dim, "estimate": est, "utilization": u }));
    }
    println!("{}", t.render());

    println!("paper Table 6:");
    let mut p = TextTable::new(["d", "BRAM", "DSP", "FF", "LUT"]);
    for &(dim, bram, dsp, ff, lut) in &PAPER_TABLE6 {
        p.row([
            dim.to_string(),
            format!("{bram}"),
            format!("{dsp}"),
            format!("{ff}"),
            format!("{lut}"),
        ]);
    }
    println!("{}", p.render());

    // Component breakdown at the paper points.
    println!(
        "component breakdown (BRAM: P / β-port / weight cache / FIFO; DSP: MAC / div / ctrl):"
    );
    for dim in [32usize, 64, 96] {
        let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
        let (bp, bb, bc, bf) = est.bram_parts;
        let (dm, dd, dc) = est.dsp_parts;
        println!("  d={dim}: BRAM {bp}+{bb}+{bc}+{bf}, DSP {dm}+{dd}+{dc}");
    }

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
