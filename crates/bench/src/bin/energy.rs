//! Energy-efficiency comparison — the paper's §5 future work, realized with
//! the documented power model in `seqge_fpga::energy`.
//!
//! Latencies: FPGA from the calibrated cycle model; Cortex-A53 and Core i7
//! from the paper's own Tables 3/4 (proposed model), so the energy numbers
//! sit on the paper's axis.

use seqge_bench::{banner, write_json, Args};
use seqge_fpga::energy::energy_comparison;
use seqge_fpga::report::{ms, TextTable};

/// Paper (dim, proposed-on-A53 ms, proposed-on-i7 ms).
const PAPER_LATENCIES: [(usize, f64, f64); 3] =
    [(32, 18.753, 0.787), (64, 35.941, 1.426), (96, 72.612, 2.396)];

fn main() {
    let args = Args::parse(1.0);
    banner("Energy per trained walk (future-work extension)", args.scale);

    let mut json_rows = Vec::new();
    for &(dim, a53_ms, i7_ms) in &PAPER_LATENCIES {
        if !args.dims.contains(&dim) {
            continue;
        }
        println!("d = {dim}:");
        let rows = energy_comparison(dim, a53_ms, i7_ms);
        let mut t = TextTable::new(["platform", "walk ms", "energy mJ", "vs FPGA"]);
        for r in &rows {
            t.row([
                r.platform.to_string(),
                ms(r.walk_ms),
                format!("{:.3}", r.energy_mj),
                format!("{:.1}x", r.vs_fpga),
            ]);
        }
        println!("{}", t.render());
        json_rows.push(serde_json::json!({ "dim": dim, "rows": rows }));
    }
    println!("(power figures are documented nominal operating points — DESIGN.md §3;");
    println!(" the ordering is set by the latency gaps, which are measured/modelled)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
