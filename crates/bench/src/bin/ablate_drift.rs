//! Ablation — edge-arrival order and the forgetting factor (extension).
//!
//! The paper's "seq" protocol replays removed edges in an arbitrary order.
//! Real dynamic graphs are *bursty*: regions densify at different times, so
//! the training distribution drifts. This ablation drives the proposed
//! model with a community-phased arrival schedule
//! ([`seqge_graph::generators::TimestampedGraph`]) and compares:
//!
//! * uniform random arrival vs community-phased (drifting) arrival,
//! * plain OS-ELM (λ = 1) vs the forgetting factor (λ = 0.9995),
//!
//! expectation: drift hurts, and the forgetting factor recovers most of the
//! loss — the mechanism the Fig. 5 reproduction leans on, isolated.

use rayon::prelude::*;
use seqge_bench::{banner, write_json, Args};
use seqge_core::{train_stream_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_graph::generators::{SbmParams, TimestampedGraph};
use seqge_graph::EdgeStream;
use seqge_sampling::UpdatePolicy;

fn main() {
    let args = Args::parse(1.0);
    banner("Ablation — arrival order × forgetting factor (d=32, synthetic SBM)", args.scale);
    let dim = 32;
    let params = SbmParams::new((1200.0 * args.scale) as usize, (4800.0 * args.scale) as usize, 6);
    let tg = TimestampedGraph::generate(params, 0.1, args.seed); // strongly phased
    let labels = tg.graph.labels().expect("labelled").to_vec();
    let classes = tg.graph.num_classes();
    let n = tg.graph.num_nodes();
    println!(
        "graph: {} nodes, {} edges, phase concentration {:.2}",
        n,
        tg.graph.num_edges(),
        tg.phase_concentration()
    );

    let drift_order = tg.arrival_order();
    let uniform_order = EdgeStream::from_edges(drift_order.clone(), args.seed ^ 0x5451);
    let cfg = TrainConfig::paper_defaults(dim);
    let ecfg = EvalConfig::default();

    type Case = (&'static str, Vec<(u32, u32)>, f32);
    let cases: Vec<Case> = vec![
        ("uniform order, λ=1.0", uniform_order.edges().to_vec(), 1.0),
        ("uniform order, λ=0.9995", uniform_order.edges().to_vec(), 0.9995),
        ("drift order,   λ=1.0", drift_order.clone(), 1.0),
        ("drift order,   λ=0.9995", drift_order.clone(), 0.9995),
    ];

    let results: Vec<(String, f64, usize)> = cases
        .into_par_iter()
        .map(|(name, order, forgetting)| {
            let ocfg =
                OsElmConfig { model: cfg.model, forgetting, ..OsElmConfig::paper_defaults(dim) };
            let mut m = OsElmSkipGram::new(n, ocfg);
            let (_, outcome) = train_stream_scenario(
                n,
                &order,
                &mut m,
                &cfg,
                UpdatePolicy::every_edge(),
                args.seed,
            );
            let f1 =
                evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed).micro_f1;
            (name.to_string(), f1, outcome.walks_trained)
        })
        .collect();

    let mut t = TextTable::new(["case", "F1", "walks trained"]);
    let mut json_rows = Vec::new();
    for (name, f1, walks) in &results {
        t.row([name.clone(), format!("{f1:.4}"), walks.to_string()]);
        json_rows.push(serde_json::json!({ "case": name, "f1": f1, "walks": walks }));
    }
    println!("{}", t.render());
    println!("(expectation: drift hurts λ=1 most; forgetting recovers most of the gap)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
