//! Sublinear-read benchmark: brute-force vs ANN `topk` latency at
//! 10^5–10^6 nodes, plus measured recall@10 and the incremental-republish
//! cost of the index.
//!
//! The vertex set and geometry come from the streamed SBM synthesizer
//! (`seqge_bench::sbm_stream`): per-block Gaussian centers plus jitter —
//! the closed-form shape a planted-partition graph trains into — so the
//! read path is measured at a scale where actually training first would
//! take hours. Both arms query the *same* published snapshot: brute goes
//! through `EmbeddingSnapshot::topk`, ANN through
//! `EmbeddingSnapshot::topk_ann` at the protocol-default probe count, and
//! recall@10 compares the two id sets per query.
//!
//! Headline numbers (gated by scripts/bench_gate.sh):
//!
//! * `p99_speedup` — brute p99 / ANN p99 on the same host and snapshot;
//!   the acceptance floor for this benchmark is ≥ 5 at 10^5 nodes.
//! * `recall_at_10` — mean |ANN ∩ brute| / k over the query set (floor 0.9).
//! * `incremental_speedup` — full index build time / re-sync time after
//!   dirtying <1% of vertices.
//!
//! Flags beyond the common set: `--nodes <n>` (default 100000, scaled by
//! `--scale`), `--queries <q>` (default 200), `--probes <p>` (default the
//! protocol default). Writes `results/bench_ann.json` (or `--json <path>`).

use seqge_ann::{AnnBuilder, AnnConfig};
use seqge_bench::sbm_stream::SbmStreamParams;
use seqge_bench::{banner, clustered_embeddings, write_json, Args};
use seqge_eval::EdgeOp;
use seqge_serve::{EmbeddingSnapshot, DEFAULT_PROBES};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

const K: usize = 10;
const DIM: usize = 32;
const NOISE: f32 = 0.35;

#[derive(Serialize)]
struct AnnResults {
    nodes: usize,
    dim: usize,
    blocks: usize,
    queries: usize,
    k: usize,
    probes: usize,
    bands: usize,
    bits: usize,
    brute_p50_ns: u64,
    brute_p99_ns: u64,
    ann_p50_ns: u64,
    ann_p99_ns: u64,
    p50_speedup: f64,
    p99_speedup: f64,
    recall_at_10: f64,
    mean_candidates: f64,
    fallbacks: usize,
    full_build_ns: u64,
    incr_sync_ns: u64,
    incremental_speedup: f64,
    dirty_vertices: usize,
    dirty_fraction: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let args = Args::parse(1.0);
    let nodes = args
        .extra("nodes")
        .map(|v| v.parse().expect("--nodes expects an integer"))
        .unwrap_or(((100_000.0 * args.scale) as usize).max(1_000));
    let queries: usize = args
        .extra("queries")
        .map(|v| v.parse().expect("--queries expects an integer"))
        .unwrap_or(200);
    let probes: usize = args
        .extra("probes")
        .map(|v| v.parse().expect("--probes expects an integer"))
        .unwrap_or(DEFAULT_PROBES);
    banner("bench_ann (brute vs ANN topk)", args.scale);

    let blocks = SbmStreamParams::sized(nodes, args.seed).blocks;
    println!("synthesizing {nodes} x {DIM} embeddings over {blocks} SBM blocks ...");
    let emb = clustered_embeddings(nodes, DIM, blocks, NOISE, args.seed);

    let cfg = AnnConfig::default();
    let mut builder = AnnBuilder::new(cfg);
    let (index, full) = builder.sync(&emb);
    println!(
        "index: {} bands x {} bits, full build {:.1} ms",
        index.bands(),
        index.bits(),
        full.build_ns as f64 / 1e6
    );
    let (bands, bits) = (index.bands(), index.bits());
    let snap = EmbeddingSnapshot {
        version: 1,
        emb,
        num_edges: 0,
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
        ann: Some(index),
    };

    let stride = (nodes / queries).max(1);
    let nodes_q: Vec<u32> = (0..queries).map(|i| ((i * stride) % nodes) as u32).collect();

    // Warmup both paths (page in the matrix, stabilize clocks).
    for &q in nodes_q.iter().take(8) {
        let _ = snap.topk(q, K, EdgeOp::Cosine);
        let _ = snap.topk_ann(q, K, EdgeOp::Cosine, None, probes);
    }

    let mut brute_ns = Vec::with_capacity(queries);
    let mut ann_ns = Vec::with_capacity(queries);
    let mut recall_sum = 0.0f64;
    let mut cand_sum = 0usize;
    let mut fallbacks = 0usize;
    for &q in &nodes_q {
        let t0 = Instant::now();
        let exact = snap.topk(q, K, EdgeOp::Cosine).expect("query in range");
        brute_ns.push(t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        let ann = snap.topk_ann(q, K, EdgeOp::Cosine, None, probes).expect("query in range");
        ann_ns.push(t0.elapsed().as_nanos() as u64);

        let truth: Vec<u32> = exact.iter().map(|h| h.0).collect();
        let hit = ann.hits.iter().filter(|h| truth.contains(&h.0)).count();
        recall_sum += hit as f64 / K as f64;
        cand_sum += ann.candidates;
        fallbacks += ann.fallback as usize;
    }
    brute_ns.sort_unstable();
    ann_ns.sort_unstable();

    // Incremental republish: dirty ~0.5% of vertices, re-sync, and compare
    // against the full build. The dirty count is exact (per-row hashing),
    // so `dirty_vertices` doubles as the correctness check bench_gate
    // keeps an eye on.
    let mut emb2 = snap.emb.clone();
    let step = 200; // 1 in 200 rows = 0.5% dirty
    let mut dirtied = 0usize;
    let mut r = 0;
    while r < nodes {
        emb2.row_mut(r)[0] += 0.25;
        dirtied += 1;
        r += step;
    }
    let (_, incr) = builder.sync(&emb2);
    assert_eq!(incr.dirty, dirtied, "per-row hashing must find exactly the dirtied rows");

    let res = AnnResults {
        nodes,
        dim: DIM,
        blocks,
        queries,
        k: K,
        probes,
        bands,
        bits,
        brute_p50_ns: percentile(&brute_ns, 0.50),
        brute_p99_ns: percentile(&brute_ns, 0.99),
        ann_p50_ns: percentile(&ann_ns, 0.50),
        ann_p99_ns: percentile(&ann_ns, 0.99),
        p50_speedup: percentile(&brute_ns, 0.50) as f64 / percentile(&ann_ns, 0.50).max(1) as f64,
        p99_speedup: percentile(&brute_ns, 0.99) as f64 / percentile(&ann_ns, 0.99).max(1) as f64,
        recall_at_10: recall_sum / queries as f64,
        mean_candidates: cand_sum as f64 / queries as f64,
        fallbacks,
        full_build_ns: full.build_ns,
        incr_sync_ns: incr.build_ns,
        incremental_speedup: full.build_ns as f64 / incr.build_ns.max(1) as f64,
        dirty_vertices: incr.dirty,
        dirty_fraction: incr.dirty as f64 / nodes as f64,
    };

    println!();
    println!("topk k={K} cosine over {queries} queries @ {nodes} nodes:");
    println!(
        "  brute  p50 {:>9.1} us   p99 {:>9.1} us",
        res.brute_p50_ns as f64 / 1e3,
        res.brute_p99_ns as f64 / 1e3
    );
    println!(
        "  ann    p50 {:>9.1} us   p99 {:>9.1} us   ({} probes, ~{:.0} candidates, {} fallbacks)",
        res.ann_p50_ns as f64 / 1e3,
        res.ann_p99_ns as f64 / 1e3,
        probes,
        res.mean_candidates,
        res.fallbacks
    );
    println!("  p99 speedup {:.1}x   recall@10 {:.3}", res.p99_speedup, res.recall_at_10);
    println!(
        "  index: full build {:.1} ms, resync with {:.2}% dirty {:.2} ms ({:.0}x cheaper)",
        res.full_build_ns as f64 / 1e6,
        res.dirty_fraction * 100.0,
        res.incr_sync_ns as f64 / 1e6,
        res.incremental_speedup
    );

    let path =
        args.json.clone().unwrap_or_else(|| Path::new("results/bench_ann.json").to_path_buf());
    write_json(&path, &res).expect("write results");
    println!("\nwrote {}", path.display());
}
