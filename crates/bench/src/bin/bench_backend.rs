//! Backend benchmark: float OS-ELM vs the fpga-sim fixed-point backend on
//! the *serving path*, measured over a real loopback TCP connection — the
//! online counterpart of `fig4` (which compares the same two engines
//! offline on prepared walks).
//!
//! Both arms boot an identical Amazon-Photo spanning forest, stream the
//! removed edges through `add_edge` + `flush`, then sweep `topk` latency
//! against the published snapshot. The fpga-sim arm additionally reports:
//!
//! * the **cycle planner** — predicted sustainable ingest rate from the
//!   calibrated per-walk cycle model at the configured clock, next to the
//!   measured loopback rate (`seqge_backend_predicted_ingest_eps` vs wall
//!   clock; the loopback rate includes host-side framing/JSON costs the
//!   model deliberately excludes, so "measured ≤ predicted" is the
//!   expected shape);
//! * the **live Fig. 4 deviation** — fixed-vs-float mean absolute
//!   embedding deviation in ppm from the float shadow trained on the same
//!   walks (`seqge_backend_deviation`), re-measured at the final publish.
//!
//! `scripts/bench_gate.sh` gates `deviation_ppm` against the Fig. 4-style
//! ceiling (quantization drift is a correctness property, not a
//! host-speed property) and requires both arms' ingest evidence.
//!
//! Writes `results/bench_backend.json` via `--json` or to that default
//! path when the flag is omitted.

use seqge_backend::{BackendKind, BackendSpec};
use seqge_bench::{banner, write_json, Args};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_eval::EdgeOp;
use seqge_graph::{spanning_forest, Dataset, Graph};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{start_backend, Client, ClientConfig, ServeConfig};
use std::time::{Duration, Instant};

/// p-th percentile of unsorted per-request latencies, in microseconds.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    if samples.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx]
}

struct ArmResult {
    ingest_eps: f64,
    ingest_wall_s: f64,
    events: u64,
    topk_p50_us: f64,
    topk_p99_us: f64,
    walks_trained: u64,
    cycles_total: u64,
    predicted_ingest_eps: i64,
    deviation_ppm: i64,
}

/// Boots one server on `kind`, streams `stream`, sweeps `topk`.
fn run_arm(
    kind: BackendKind,
    initial: &Graph,
    stream: &[(u32, u32)],
    cfg: &TrainConfig,
    ocfg: OsElmConfig,
    seed: u64,
) -> ArmResult {
    let spec = BackendSpec::new(kind, *cfg, ocfg, UpdatePolicy::every_edge(), seed);
    let mut backend = spec.cold(initial.num_nodes());
    let t = Instant::now();
    backend.bootstrap(initial);
    println!("  [{kind}] bootstrap: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let handle = start_backend("127.0.0.1:0", initial.clone(), backend, ServeConfig::default())
        .expect("server starts");
    // The flush barrier waits for the *entire* queued stream to train; the
    // fpga-sim arm runs every walk through the fixed-point kernel (plus the
    // float shadow), so on a loaded host that is minutes, not seconds.
    let ccfg = ClientConfig { timeout: Duration::from_secs(1800), ..ClientConfig::default() };
    let mut c = Client::connect_with(handle.addr(), ccfg).expect("client connects");

    // Ingest: queue the whole stream, flush barrier = trained + published.
    let t = Instant::now();
    for &(u, v) in stream {
        c.add_edge(u, v).expect("add_edge");
    }
    c.flush().expect("flush");
    let ingest_wall_s = t.elapsed().as_secs_f64();
    let events = stream.len() as u64;
    let ingest_eps = events as f64 / ingest_wall_s;

    // Query sweep against the published snapshot.
    let n = 1000;
    let num_nodes = initial.num_nodes();
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        let node = ((i * 131) % num_nodes) as u32;
        let t = Instant::now();
        drop(c.topk(node, 10, EdgeOp::Cosine).expect("topk"));
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let topk_p50_us = percentile(&mut lat, 50.0);
    let topk_p99_us = percentile(&mut lat, 99.0);

    let stats = handle.stats();
    let out = ArmResult {
        ingest_eps,
        ingest_wall_s,
        events,
        topk_p50_us,
        topk_p99_us,
        walks_trained: stats.walks_trained.get(),
        cycles_total: stats.backend_cycles.get(),
        predicted_ingest_eps: stats.backend_predicted_eps.get(),
        deviation_ppm: stats.backend_deviation.get(),
    };
    handle.shutdown().expect("shutdown");
    println!(
        "  [{kind}] ingest {events} events in {ingest_wall_s:.2} s ({ingest_eps:.0} ev/s)   \
         topk p50 {topk_p50_us:.1} us p99 {topk_p99_us:.1} us",
        events = out.events
    );
    out
}

fn main() {
    let args = Args::parse(0.15);
    banner("training backends on the serving path (float vs fpga-sim)", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = args.seed;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };

    // Serve the Amazon-Photo spanning forest; the removed edges are the
    // live stream — the same protocol as `bench_serve`, on the dataset the
    // paper's Fig. 4 reports zero F1 drop for.
    let full = Dataset::AmazonPhoto.generate_scaled(args.scale, args.seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let stream = split.removed_edges.clone();
    println!(
        "ampt scale {}: {} nodes, {} forest edges, {} streamed edges, d={dim}",
        args.scale,
        initial.num_nodes(),
        initial.num_edges(),
        stream.len()
    );

    let float = run_arm(BackendKind::Float, &initial, &stream, &cfg, ocfg, args.seed);
    let fpga = run_arm(BackendKind::FpgaSim, &initial, &stream, &cfg, ocfg, args.seed);

    let ingest_ratio = fpga.ingest_eps / float.ingest_eps;
    println!();
    println!("fpga-sim vs float ingest: {ingest_ratio:.2}x");
    println!(
        "fpga-sim planner: {} modeled cycles, predicted {} ev/s (measured {:.0} ev/s loopback)",
        fpga.cycles_total, fpga.predicted_ingest_eps, fpga.ingest_eps
    );
    println!("fpga-sim deviation vs float shadow: {} ppm", fpga.deviation_ppm);

    let arm_json = |a: &ArmResult| {
        serde_json::json!({
            "ingest_events": a.events,
            "ingest_wall_s": a.ingest_wall_s,
            "ingest_eps": a.ingest_eps,
            "topk10_p50_us": a.topk_p50_us,
            "topk10_p99_us": a.topk_p99_us,
            "walks_trained": a.walks_trained,
        })
    };
    let record = serde_json::json!({
        "dataset": "ampt",
        "scale": args.scale,
        "dim": dim,
        "nodes": initial.num_nodes(),
        "streamed_edges": stream.len(),
        "float": arm_json(&float),
        "fpga_sim": arm_json(&fpga),
        // Flat copies of the gated metrics (scripts/bench_gate.sh scrapes
        // line-wise; keep these unique at top level).
        "float_ingest_eps": float.ingest_eps,
        "fpga_ingest_eps": fpga.ingest_eps,
        "ingest_ratio_fpga_vs_float": ingest_ratio,
        "backend_cycles_total": fpga.cycles_total,
        "predicted_ingest_eps": fpga.predicted_ingest_eps,
        "deviation_ppm": fpga.deviation_ppm,
        "note": "loopback TCP through the serve plane, identical boot graph \
                 and stream per arm; deviation_ppm is the fpga-sim backend's \
                 live float-shadow metric (seqge_backend_deviation) at the \
                 final publish; predicted_ingest_eps is the cycle-model \
                 planner at the configured clock and excludes host-side \
                 protocol costs",
    });
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::Path::new("results/bench_backend.json").into());
    write_json(&path, &record).expect("write json");
    println!("json written to {}", path.display());
}
