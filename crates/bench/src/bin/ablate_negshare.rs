//! Ablation — shared-per-walk negatives (§3.2's BRAM-traffic trick, after
//! Ji et al. \[10\]) vs fresh negatives per positive.
//!
//! Measures three things at d = 32:
//! * accuracy (does the reuse hurt the embedding?),
//! * modeled DRAM column traffic via the accelerator's tile manager,
//! * host-side training time of the proposed model under both modes.

use seqge_bench::{banner, prepared_walks, time_walk_training, write_json, Args};
use seqge_core::model::EmbeddingModel;
use seqge_core::{NegativeMode, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_eval::{evaluate_embedding, EvalConfig};
use seqge_fpga::report::TextTable;
use seqge_fpga::Accelerator;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

fn main() {
    // amcp (13 752 nodes at full scale) so the weight tile actually
    // overflows: a scaled cora fits entirely in the 127-bank cache and shows
    // no traffic difference.
    let args = Args::parse(0.25);
    banner("Ablation — shared-per-walk vs fresh-per-positive negatives (d=32, amcp)", args.scale);
    let dim = 32;
    let cfg = TrainConfig::paper_defaults(dim);
    let prep = prepared_walks(Dataset::AmazonComputers, args.scale, &cfg, args.seed);
    let labels = prep.graph.labels().expect("labelled").to_vec();
    let classes = prep.graph.num_classes();
    let n = prep.graph.num_nodes();
    let ecfg = EvalConfig::default();

    let mut t =
        TextTable::new(["negative mode", "F1", "walk time ms", "tile hit rate", "dram fetches"]);
    let mut json_rows = Vec::new();

    for (name, mode) in [
        ("fresh per positive", NegativeMode::PerPosition),
        ("shared per walk", NegativeMode::PerWalk),
    ] {
        let mut ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        ocfg.model.negative_mode = mode;

        // Accuracy.
        let mut m = OsElmSkipGram::new(n, ocfg);
        let mut rng = Rng64::seed_from_u64(args.seed);
        for w in &prep.walks {
            m.train_walk(w, &prep.table, &mut rng);
        }
        let f1 = evaluate_embedding(&m.embedding(), &labels, classes, &ecfg, args.seed).micro_f1;

        // Host time.
        let mut m2 = OsElmSkipGram::new(n, ocfg);
        let mut rng2 = Rng64::seed_from_u64(args.seed);
        let walks: Vec<_> = prep.walks.iter().take(300).cloned().collect();
        let t_walk = time_walk_training(&mut m2, &walks, &prep.table, &mut rng2, 0.5) * 1e3;

        // Tile traffic on the simulated accelerator. Note: the accelerator
        // constructor forces PerWalk (the hardware design); for the fresh
        // mode we override after construction via the config — instead we
        // model traffic with the float model's access stream through a tile:
        // simpler and equivalent, the accelerator path is exercised for the
        // PerWalk row.
        let (hit_rate, fetches) = if mode == NegativeMode::PerWalk {
            let mut acc = Accelerator::new(n, ocfg);
            let mut rng3 = Rng64::seed_from_u64(args.seed);
            for w in prep.walks.iter().take(2000) {
                acc.train_walk(w, &prep.table, &mut rng3);
            }
            let total = acc.stats.tile_hits + acc.stats.dram_fetches;
            (acc.stats.tile_hits as f64 / total.max(1) as f64, acc.stats.dram_fetches)
        } else {
            use seqge_fpga::bram::TileManager;
            use seqge_sampling::contexts;
            let mut tile = TileManager::from_banks(127, dim);
            let mut rng3 = Rng64::seed_from_u64(args.seed);
            for w in prep.walks.iter().take(2000) {
                for ctx in contexts(w, cfg.model.window) {
                    tile.touch(ctx.center);
                    for &pos in &ctx.positives {
                        tile.touch(pos);
                        for _ in 0..cfg.model.negative_samples {
                            tile.touch(prep.table.sample(pos, &mut rng3));
                        }
                    }
                }
            }
            (tile.hit_rate(), tile.misses)
        };

        t.row([
            name.to_string(),
            format!("{f1:.4}"),
            format!("{t_walk:.3}"),
            format!("{hit_rate:.3}"),
            fetches.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "mode": name, "f1": f1, "walk_ms": t_walk,
            "tile_hit_rate": hit_rate, "dram_fetches": fetches,
        }));
    }

    println!("{}", t.render());
    println!("(expectation: shared negatives keep F1 within noise while cutting DRAM traffic)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
