//! Cluster ingest-scaling benchmark: edge-stream throughput of a sharded
//! `seqge-cluster` deployment, 1 shard vs 4 shards, through the router
//! over real loopback TCP.
//!
//! Each arm boots an in-process cluster (`shards` trainer threads, each
//! with its own WAL at fsync=batch) and streams the spanning-forest-held
//! edges through `add_edge` from four concurrent writer connections,
//! finishing with a `flush` barrier so the wall time covers the full
//! pipeline: routing, WAL append, walk restarts on the owning shard,
//! OS-ELM training, and snapshot republication. The client-side pressure
//! (4 connections) is identical in both arms, so the ratio isolates the
//! shard plane.
//!
//! `scaling_ratio` is the headline number: >1 means added shards bought
//! real throughput. Under single-owner partitioning every edge trains on
//! exactly one shard (`edge_owner(u, v) = owner(min(u, v))`), so the
//! 4-shard arm
//! performs the *same* total training work as the 1-shard arm, split
//! across four trainer threads — on a ≥4-core host the ratio is gated in
//! CI at >1.0 (target ≥1.5). Every run also reconciles the per-shard
//! `edges_inserted` counters against the stream length, proving no
//! cross-shard edge trained twice (the pre-halo both-endpoint router
//! summed to ~2× here). On a smaller host the trainer threads timeshare
//! and the ratio degrades toward 1.0 minus fan-out overhead; the `cores`
//! field records the budget the run actually had.
//!
//! Writes `results/bench_cluster.json` via `--json` (experiment-script
//! convention) or to that default path when the flag is omitted.

use seqge_bench::{banner, write_json, Args};
use seqge_cluster::{Cluster, ClusterConfig};
use seqge_graph::{spanning_forest, Dataset, Graph};
use seqge_serve::{Client, ClientConfig};
use std::path::Path;
use std::time::{Duration, Instant};

const WRITERS: usize = 4;
/// Repetitions per arm; the fastest run is reported. Sub-second arms on a
/// loaded host are scheduling-noise-dominated, and min-of-N is the usual
/// estimator for the noise-free cost.
const REPS: usize = 3;

/// One connection with its own client id. Write dedup keys on
/// `(client, seq)` and every connection numbers its writes from 1, so
/// writers sharing an id would collide and have most of their stream
/// silently deduped instead of trained — the reconciliation assert below
/// exists to catch exactly that class of bench bug.
fn client(addr: &str, tag: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            timeout: Duration::from_secs(30),
            retries: 8,
            client_id: format!("bench-{}-{tag}", std::process::id()),
            ..ClientConfig::default()
        },
    )
    .expect("client connects to router")
}

/// Best (fastest) of [`REPS`] ingest runs: (edges/sec, wall seconds).
fn ingest_best(
    shards: usize,
    initial: &Graph,
    stream: &[(u32, u32)],
    dim: usize,
    seed: u64,
) -> (f64, f64) {
    (0..REPS)
        .map(|_| ingest_run(shards, initial, stream, dim, seed))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one rep")
}

/// Streams `stream` through a fresh `shards`-shard cluster and returns
/// edges/sec over the write+flush wall time.
fn ingest_run(
    shards: usize,
    initial: &Graph,
    stream: &[(u32, u32)],
    dim: usize,
    seed: u64,
) -> (f64, f64) {
    let base =
        std::env::temp_dir().join(format!("seqge_bench_cluster_{}_{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = ClusterConfig::in_process(shards, base.clone(), dim, seed);
    let cluster = Cluster::start(&cfg, initial).expect("cluster boots");
    let addr = cluster.addr().to_string();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let addr = &addr;
            let chunk: Vec<(u32, u32)> = stream.iter().copied().skip(w).step_by(WRITERS).collect();
            scope.spawn(move || {
                let mut c = client(addr, &format!("w{w}"));
                for (u, v) in chunk {
                    c.add_edge(u, v).expect("write acks");
                }
            });
        }
    });
    let mut c = client(&addr, "flush");
    c.flush().expect("flush barrier");
    let wall = t0.elapsed().as_secs_f64();

    // Exactly-once accounting (outside the timed window): the per-shard
    // train counters must sum to the stream length, or the ratio is
    // comparing arms that did different amounts of work.
    let trained: u64 = cluster
        .shard_addrs()
        .iter()
        .map(|a| {
            let mut sc = client(&a.to_string(), "stats");
            let stats = sc.call(r#"{"cmd":"stats"}"#).expect("shard stats");
            stats.get("edges_inserted").and_then(serde_json::Value::as_u64).unwrap_or(0)
        })
        .sum();
    assert_eq!(
        trained,
        stream.len() as u64,
        "{shards}-shard arm: per-shard edges_inserted must reconcile with the stream \
         (an excess means a cross-shard edge trained twice)"
    );

    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
    (stream.len() as f64 / wall, wall)
}

fn main() {
    let args = Args::parse(0.3);
    banner("cluster ingest scaling (1 shard vs 4 shards)", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let full = Dataset::Cora.generate_scaled(args.scale, args.seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let stream = split.removed_edges;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "cora scale {}: {} nodes, {} forest edges, {} streamed edges, d={dim}, {cores} cores",
        args.scale,
        initial.num_nodes(),
        initial.num_edges(),
        stream.len()
    );

    let (eps1, wall1) = ingest_best(1, &initial, &stream, dim, args.seed);
    println!("  1 shard : {eps1:9.0} edges/s  ({wall1:.2}s wall, best of {REPS})");
    let (eps4, wall4) = ingest_best(4, &initial, &stream, dim, args.seed);
    println!("  4 shards: {eps4:9.0} edges/s  ({wall4:.2}s wall, best of {REPS})");
    let ratio = eps4 / eps1;
    println!("  scaling : {ratio:.2}x");

    let record = serde_json::json!({
        "dataset": "cora",
        "scale": args.scale,
        "dim": dim,
        "nodes": initial.num_nodes(),
        "streamed_edges": stream.len(),
        "writer_connections": WRITERS,
        "reps_per_arm": REPS,
        "cores": cores,
        "ingest_1shard_eps": eps1,
        "ingest_1shard_wall_s": wall1,
        "ingest_4shard_eps": eps4,
        "ingest_4shard_wall_s": wall4,
        "scaling_ratio": ratio,
        "exactly_once_verified": true,
        "note": "loopback TCP through the scatter-gather router, 4 concurrent \
                 writer connections in both arms, fsync=batch WAL per shard, \
                 flush barrier included in the wall time, fastest of 3 runs \
                 per arm; single-owner partitioning trains every edge on \
                 exactly one shard (per-shard edges_inserted counters \
                 reconcile with the stream length each run), so both arms do \
                 identical total training work and the ratio measures real \
                 parallelism; attainable ratio is bounded by min(cores, 4) \
                 minus router fan-out overhead",
    });
    let path = args.json.clone().unwrap_or_else(|| Path::new("results/bench_cluster.json").into());
    write_json(&path, &record).expect("write json");
    println!("json written to {}", path.display());
}
