//! Cluster ingest-scaling benchmark: edge-stream throughput of a sharded
//! `seqge-cluster` deployment, 1 shard vs 4 shards, through the router
//! over real loopback TCP.
//!
//! Each arm boots an in-process cluster (`shards` trainer threads, each
//! with its own WAL at fsync=batch) and streams the spanning-forest-held
//! edges through `add_edge` from four concurrent writer connections,
//! finishing with a `flush` barrier so the wall time covers the full
//! pipeline: routing, WAL append, walk restarts on both endpoint shards,
//! OS-ELM training, and snapshot republication. The client-side pressure
//! (4 connections) is identical in both arms, so the ratio isolates the
//! shard plane.
//!
//! `scaling_ratio` is the headline number: >1 means the shard plane
//! parallelized training. Perfect 4x is not attainable — a cross-shard
//! edge trains on *both* endpoint owners (the partitioning invariant), so
//! a random stream roughly doubles total training work at 4 shards — and
//! on a small host the arms share cores with the router and writers; the
//! `cores` field records the budget the run actually had.
//!
//! Writes `results/bench_cluster.json` via `--json` (experiment-script
//! convention) or to that default path when the flag is omitted.

use seqge_bench::{banner, write_json, Args};
use seqge_cluster::{Cluster, ClusterConfig};
use seqge_graph::{spanning_forest, Dataset, Graph};
use seqge_serve::{Client, ClientConfig};
use std::path::Path;
use std::time::{Duration, Instant};

const WRITERS: usize = 4;
/// Repetitions per arm; the fastest run is reported. Sub-second arms on a
/// loaded host are scheduling-noise-dominated, and min-of-N is the usual
/// estimator for the noise-free cost.
const REPS: usize = 3;

fn client(addr: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            timeout: Duration::from_secs(30),
            retries: 8,
            client_id: format!("bench-{}", std::process::id()),
            ..ClientConfig::default()
        },
    )
    .expect("client connects to router")
}

/// Best (fastest) of [`REPS`] ingest runs: (edges/sec, wall seconds).
fn ingest_best(
    shards: usize,
    initial: &Graph,
    stream: &[(u32, u32)],
    dim: usize,
    seed: u64,
) -> (f64, f64) {
    (0..REPS)
        .map(|_| ingest_run(shards, initial, stream, dim, seed))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one rep")
}

/// Streams `stream` through a fresh `shards`-shard cluster and returns
/// edges/sec over the write+flush wall time.
fn ingest_run(
    shards: usize,
    initial: &Graph,
    stream: &[(u32, u32)],
    dim: usize,
    seed: u64,
) -> (f64, f64) {
    let base =
        std::env::temp_dir().join(format!("seqge_bench_cluster_{}_{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = ClusterConfig::in_process(shards, base.clone(), dim, seed);
    let cluster = Cluster::start(&cfg, initial).expect("cluster boots");
    let addr = cluster.addr().to_string();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let addr = &addr;
            let chunk: Vec<(u32, u32)> = stream.iter().copied().skip(w).step_by(WRITERS).collect();
            scope.spawn(move || {
                let mut c = client(addr);
                for (u, v) in chunk {
                    c.add_edge(u, v).expect("write acks");
                }
            });
        }
    });
    let mut c = client(&addr);
    c.flush().expect("flush barrier");
    let wall = t0.elapsed().as_secs_f64();

    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
    (stream.len() as f64 / wall, wall)
}

fn main() {
    let args = Args::parse(0.3);
    banner("cluster ingest scaling (1 shard vs 4 shards)", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let full = Dataset::Cora.generate_scaled(args.scale, args.seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let stream = split.removed_edges;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "cora scale {}: {} nodes, {} forest edges, {} streamed edges, d={dim}, {cores} cores",
        args.scale,
        initial.num_nodes(),
        initial.num_edges(),
        stream.len()
    );

    let (eps1, wall1) = ingest_best(1, &initial, &stream, dim, args.seed);
    println!("  1 shard : {eps1:9.0} edges/s  ({wall1:.2}s wall, best of {REPS})");
    let (eps4, wall4) = ingest_best(4, &initial, &stream, dim, args.seed);
    println!("  4 shards: {eps4:9.0} edges/s  ({wall4:.2}s wall, best of {REPS})");
    let ratio = eps4 / eps1;
    println!("  scaling : {ratio:.2}x");

    let record = serde_json::json!({
        "dataset": "cora",
        "scale": args.scale,
        "dim": dim,
        "nodes": initial.num_nodes(),
        "streamed_edges": stream.len(),
        "writer_connections": WRITERS,
        "reps_per_arm": REPS,
        "cores": cores,
        "ingest_1shard_eps": eps1,
        "ingest_1shard_wall_s": wall1,
        "ingest_4shard_eps": eps4,
        "ingest_4shard_wall_s": wall4,
        "scaling_ratio": ratio,
        "note": "loopback TCP through the scatter-gather router, 4 concurrent \
                 writer connections in both arms, fsync=batch WAL per shard, \
                 flush barrier included in the wall time, fastest of 3 runs \
                 per arm; cross-shard edges \
                 train on both endpoint owners, so the 4-shard arm performs \
                 roughly double the training work of the 1-shard arm and the \
                 attainable ratio is bounded by min(cores, 4)/2 on top of \
                 router overhead",
    });
    let path = args.json.clone().unwrap_or_else(|| Path::new("results/bench_cluster.json").into());
    write_json(&path, &record).expect("write json");
    println!("json written to {}", path.display());
}
