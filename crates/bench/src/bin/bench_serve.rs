//! Serving-path benchmark: query latency and ingest throughput of the
//! `seqge-serve` daemon, measured over a real loopback TCP connection so
//! the numbers include framing, JSON, and syscall costs — what a client
//! actually observes.
//!
//! Three phases:
//!
//! 1. **idle queries** — p50/p99 latency of `get_embedding`, `topk`, and
//!    `score_link` against a quiescent server (trainer thread parked);
//! 2. **ingest** — stream the spanning-forest-removed edges through
//!    `add_edge` and `flush`; throughput counts the full pipeline (walk
//!    restart from both endpoints, OS-ELM updates, snapshot republication),
//!    then the same stream again through a WAL-backed server (fsync=batch)
//!    to price the durability tax (`wal_overhead_pct`);
//! 3. **contended queries** — `get_embedding` p50/p99 while a second
//!    connection streams edges, demonstrating that the lock-free snapshot
//!    reads hold up under concurrent training.
//!
//! Writes `results/bench_serve.json` via `--json` (the experiment-script
//! convention) or to that default path when the flag is omitted.

use seqge_bench::{banner, write_json, Args};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_eval::EdgeOp;
use seqge_graph::{spanning_forest, Dataset};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_cold, start, Client, ServeConfig};
use std::path::Path;
use std::time::Instant;

/// p-th percentile of unsorted per-request latencies, in microseconds.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    if samples.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx]
}

fn timed<T>(mut op: impl FnMut() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = op();
    (out, t.elapsed().as_secs_f64() * 1e6)
}

fn latency_sweep(name: &str, n: usize, mut op: impl FnMut(u32), num_nodes: usize) -> (f64, f64) {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        let node = (i * 131) % num_nodes;
        let ((), us) = timed(|| op(node as u32));
        lat.push(us);
    }
    let p50 = percentile(&mut lat, 50.0);
    let p99 = percentile(&mut lat, 99.0);
    println!("  {name:<24} p50 {p50:8.1} us   p99 {p99:8.1} us   ({n} requests)");
    (p50, p99)
}

fn main() {
    let args = Args::parse(0.15);
    banner("serving-path latency & ingest throughput", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = args.seed;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };

    // Serve the spanning forest; the removed edges are the live stream.
    let full = Dataset::Cora.generate_scaled(args.scale, args.seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let stream = split.removed_edges.clone();
    let num_nodes = initial.num_nodes();
    println!(
        "cora scale {}: {} nodes, {} forest edges, {} streamed edges, d={dim}",
        args.scale,
        num_nodes,
        initial.num_edges(),
        stream.len()
    );

    let t = Instant::now();
    let (model, inc) = boot_cold(&initial, &cfg, ocfg, UpdatePolicy::every_edge(), args.seed);
    println!("bootstrap: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let initial_wal = initial.clone();
    let handle =
        start("127.0.0.1:0", initial, model, inc, ServeConfig::default()).expect("server starts");
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("client connects");

    // Phase 1: idle-server query latency.
    println!("idle queries:");
    let n = 2000;
    let (emb_p50, emb_p99) =
        latency_sweep("get_embedding", n, |node| drop(c.get_embedding(node).unwrap()), num_nodes);
    let (topk_p50, topk_p99) = latency_sweep(
        "topk k=10",
        n,
        |node| drop(c.topk(node, 10, EdgeOp::Cosine).unwrap()),
        num_nodes,
    );
    let (score_p50, score_p99) = latency_sweep(
        "score_link",
        n,
        |node| {
            c.score_link(node, (node + 1) % num_nodes as u32, EdgeOp::Cosine).unwrap();
        },
        num_nodes,
    );

    // Phase 2: ingest throughput (queue everything, flush barrier = fully
    // trained and republished). The initial stream is followed by toggle
    // rounds (remove + re-add keeps the graph invariant) so each arm runs
    // long enough for the plain-vs-WAL comparison to rise above scheduler
    // noise.
    let ingest_events = |c: &mut Client, stream: &[(u32, u32)]| -> (u64, f64) {
        const TOGGLE_ROUNDS: usize = 2;
        let t = Instant::now();
        for &(u, v) in stream {
            c.add_edge(u, v).expect("add_edge");
        }
        for _ in 0..TOGGLE_ROUNDS {
            for &(u, v) in stream {
                c.remove_edge(u, v).expect("remove_edge");
                c.add_edge(u, v).expect("add_edge");
            }
        }
        c.flush().expect("flush");
        (stream.len() as u64 * (1 + 2 * TOGGLE_ROUNDS as u64), t.elapsed().as_secs_f64())
    };
    let (events, ingest_s) = ingest_events(&mut c, &stream);
    let edges_per_sec = events as f64 / ingest_s;
    println!("ingest: {events} events trained in {ingest_s:.2} s  ({edges_per_sec:.0} events/s)");

    // Phase 2b: the same stream through a WAL-backed server with the
    // default `--fsync batch` policy — the steady-state durability tax.
    // Booted identically (boot_cold is deterministic), so the trained work
    // per edge matches the plain arm exactly.
    let wal_dir = std::env::temp_dir().join(format!("seqge_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wcfg =
        seqge_serve::WalConfig { dir: wal_dir.clone(), fsync: seqge_serve::FsyncPolicy::Batch };
    let spec = seqge_backend::BackendSpec::float(cfg, ocfg, UpdatePolicy::every_edge(), args.seed);
    let boot = seqge_serve::boot_wal(&wcfg, Some(initial_wal), &spec, 0).expect("wal server boots");
    let wal_handle = seqge_serve::start_backend(
        "127.0.0.1:0",
        boot.graph,
        boot.backend,
        ServeConfig { wal: Some(std::sync::Arc::new(boot.wal)), ..ServeConfig::default() },
    )
    .expect("wal server starts");
    let mut wc = Client::connect(wal_handle.addr()).expect("wal client connects");
    let (wal_events, wal_ingest_s) = ingest_events(&mut wc, &stream);
    let wal_edges_per_sec = wal_events as f64 / wal_ingest_s;
    let wal_overhead_pct = (1.0 - wal_edges_per_sec / edges_per_sec) * 100.0;
    println!(
        "ingest (wal, fsync=batch): {wal_events} events in {wal_ingest_s:.2} s  \
         ({wal_edges_per_sec:.0} events/s, overhead {wal_overhead_pct:+.1}%)"
    );
    wal_handle.shutdown().expect("wal shutdown");
    let _ = std::fs::remove_dir_all(&wal_dir);

    // Phase 3: query latency under write contention. A writer connection
    // re-toggles a slice of stream edges (remove + re-add keeps the graph
    // invariant) while this connection keeps reading.
    let writer = std::thread::spawn({
        let toggles: Vec<(u32, u32)> = stream.iter().take(400).copied().collect();
        move || {
            let mut w = Client::connect(addr).expect("writer connects");
            for &(u, v) in &toggles {
                w.remove_edge(u, v).expect("remove_edge");
                w.add_edge(u, v).expect("add_edge");
            }
            w.flush().expect("writer flush")
        }
    });
    println!("queries during ingest:");
    let (busy_p50, busy_p99) = latency_sweep(
        "get_embedding (busy)",
        n,
        |node| drop(c.get_embedding(node).unwrap()),
        num_nodes,
    );
    writer.join().expect("writer thread");

    let stats = handle.stats();
    let walks = stats.walks_trained.get();

    // Write-to-visibility freshness: enqueue -> snapshot-publish latency,
    // bucketed by how many writes the publishing batch folded. Populated
    // by the ingest phases above (tracing on by default; SEQGE_OBS=off
    // would leave the histograms empty but keep the event counter).
    println!("write-to-visibility freshness (seqge_freshness_ns):");
    let mut freshness = Vec::new();
    let mut freshness_p99_ms_max = 0.0f64;
    for (bucket, hist) in &stats.freshness_ns {
        let count = hist.count();
        if count == 0 {
            continue;
        }
        let p50_ms = hist.quantile(0.5) / 1e6;
        let p99_ms = hist.quantile(0.99) / 1e6;
        freshness_p99_ms_max = freshness_p99_ms_max.max(p99_ms);
        println!(
            "  batch={bucket:<6} p50 {p50_ms:8.2} ms   p99 {p99_ms:8.2} ms   ({count} publishes)"
        );
        freshness.push(serde_json::json!({
            "batch": *bucket,
            "publishes": count,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
        }));
    }
    let writes_visible = stats.writes_visible.get();
    println!("  writes visible: {writes_visible}");
    handle.shutdown().expect("shutdown");

    let record = serde_json::json!({
        "dataset": "cora",
        "scale": args.scale,
        "dim": dim,
        "nodes": num_nodes,
        "streamed_edges": stream.len(),
        "ingest_events": events,
        "requests_per_sweep": n,
        "get_embedding_p50_us": emb_p50,
        "get_embedding_p99_us": emb_p99,
        "topk10_p50_us": topk_p50,
        "topk10_p99_us": topk_p99,
        "score_link_p50_us": score_p50,
        "score_link_p99_us": score_p99,
        "ingest_edges_per_sec": edges_per_sec,
        "ingest_wall_s": ingest_s,
        "ingest_edges_per_sec_wal_batch": wal_edges_per_sec,
        "ingest_wall_s_wal_batch": wal_ingest_s,
        "wal_overhead_pct": wal_overhead_pct,
        "walks_trained": walks,
        "get_embedding_busy_p50_us": busy_p50,
        "get_embedding_busy_p99_us": busy_p99,
        "freshness_ns_buckets": freshness,
        "freshness_p99_ms_max": freshness_p99_ms_max,
        "writes_visible": writes_visible,
        "note": "loopback TCP, line-delimited JSON, one request in flight; \
                 ingest throughput includes walk restarts from both edge \
                 endpoints, OS-ELM training, and snapshot republication, \
                 measured over the stream plus two remove/re-add toggle \
                 rounds; the wal arm runs the identical workload through a \
                 write-ahead-logged server with the default batch fsync \
                 policy; the busy sweep runs against a concurrent writer \
                 connection",
    });
    let path = args.json.clone().unwrap_or_else(|| Path::new("results/bench_serve.json").into());
    write_json(&path, &record).expect("write json");
    println!("json written to {}", path.display());
}
