//! Observability-overhead benchmark: proves the `seqge-obs` span timing
//! stays inside its overhead budget on the pipelined-training hot path.
//!
//! Three arms over the same workload (`train_all_pipelined` on scaled
//! Cora):
//!
//! * **enabled** — instrumentation compiled in, span timing on (the
//!   default production configuration);
//! * **runtime_disabled** — compiled in, `SEQGE_OBS=off`-equivalent (span
//!   clock reads gated off; counters stay live);
//! * **compiled_out** — built with `--features obs-disabled`, which
//!   forwards to `seqge-obs/disabled` and compiles every recording call to
//!   a no-op.
//!
//! One binary can only run the arms its build supports, so the two builds
//! **merge** into `results/bench_obs.json`: each run replaces its own arms
//! in the existing file. The **gate** compares `enabled` against
//! `runtime_disabled` — the two arms share one binary and interleave their
//! repetitions, so code layout, thermal drift, and allocator state cancel
//! out and the comparison isolates the span-timing cost alone. The
//! enabled-vs-`compiled_out` number spans two builds whose code layout
//! differs for reasons unrelated to instrumentation; it is recorded for
//! information and never gates. The `runtime_disabled`-vs-`compiled_out`
//! delta, however, bounds the residual cost of the tracing-capable code
//! with tracing off (one atomic load per request plus dead branches) and
//! gates at `SEQGE_TRACE_OFF_MAX_OVERHEAD_PCT` (default 2.0).
//! `scripts/bench_obs.sh` orchestrates the two builds; the primary pass
//! threshold comes from `SEQGE_OBS_MAX_OVERHEAD_PCT` (default 5.0).

use seqge_bench::{banner, write_json, Args};
use seqge_core::{train_all_pipelined, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_graph::{Dataset, Graph};
use serde_json::Value;
use std::path::Path;
use std::time::Instant;

const REPS: usize = 5;
const THREADS: usize = 2;

/// Best-of-`REPS` wall time for one full pipelined training run.
fn measure(g: &Graph, cfg: &TrainConfig, ocfg: OsElmConfig, seed: u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut walks = 0u64;
    for _ in 0..REPS {
        let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
        let t = Instant::now();
        let out = train_all_pipelined(g, &mut m, cfg, seed, THREADS);
        best = best.min(t.elapsed().as_secs_f64());
        walks = out.walks_trained as u64;
    }
    (best, walks)
}

fn arm_record(wall_s: f64, walks: u64) -> Value {
    Value::Object(vec![
        ("wall_s".to_string(), Value::F64(wall_s)),
        ("walks".to_string(), Value::U64(walks)),
        ("walks_per_sec".to_string(), Value::F64(walks as f64 / wall_s)),
    ])
}

fn arm_wall(arms: &[(String, Value)], name: &str) -> Option<f64> {
    arms.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get("wall_s")).and_then(Value::as_f64)
}

fn main() {
    let args = Args::parse(0.3);
    banner("observability overhead (obs on vs runtime-off vs compiled-out)", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = args.seed;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
    let g = Dataset::Cora.generate_scaled(args.scale, args.seed);
    println!(
        "cora scale {}: {} nodes / {} edges, d={dim}, {} reps (best-of), {} walker thread(s)",
        args.scale,
        g.num_nodes(),
        g.num_edges(),
        REPS,
        THREADS
    );

    // Warm-up run so page faults and allocator growth hit no arm.
    let _ = measure(&g, &cfg, ocfg, args.seed);

    let mut fresh: Vec<(String, Value)> = Vec::new();
    if seqge_obs::COMPILED {
        // Interleave the two runtime arms rep by rep: any slow drift of the
        // host (thermal, cache, scheduler) then lands on both arms equally
        // instead of biasing whichever block ran second.
        let mut on = (f64::INFINITY, 0u64);
        let mut off = (f64::INFINITY, 0u64);
        for _ in 0..REPS {
            for (enabled, best) in [(true, &mut on), (false, &mut off)] {
                seqge_obs::set_timing_enabled(enabled);
                let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
                let t = Instant::now();
                let out = train_all_pipelined(&g, &mut m, &cfg, args.seed, THREADS);
                let wall = t.elapsed().as_secs_f64();
                if wall < best.0 {
                    *best = (wall, out.walks_trained as u64);
                }
            }
        }
        seqge_obs::set_timing_enabled(true);
        println!("  enabled          {:.3} s   {:.0} walks/s", on.0, on.1 as f64 / on.0);
        println!("  runtime_disabled {:.3} s   {:.0} walks/s", off.0, off.1 as f64 / off.0);
        fresh.push(("enabled".to_string(), arm_record(on.0, on.1)));
        fresh.push(("runtime_disabled".to_string(), arm_record(off.0, off.1)));
    } else {
        let (wall, walks) = measure(&g, &cfg, ocfg, args.seed);
        println!("  compiled_out     {:.3} s   {:.0} walks/s", wall, walks as f64 / wall);
        fresh.push(("compiled_out".to_string(), arm_record(wall, walks)));
    }

    // Merge with whatever a previous build's run left behind.
    let path = args.json.clone().unwrap_or_else(|| Path::new("results/bench_obs.json").into());
    let mut arms: Vec<(String, Value)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .and_then(|v| match v.get("arms") {
            Some(Value::Object(pairs)) => Some(pairs.clone()),
            _ => None,
        })
        .unwrap_or_default();
    for (name, rec) in fresh {
        arms.retain(|(n, _)| *n != name);
        arms.push((name, rec));
    }
    arms.sort_by(|a, b| a.0.cmp(&b.0));

    let max_pct: f64 = std::env::var("SEQGE_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let overhead_vs = |arm: &str, base: &str| -> Option<f64> {
        let base = arm_wall(&arms, base)?;
        Some((arm_wall(&arms, arm)? - base) / base * 100.0)
    };
    // The gate: same binary, interleaved reps — isolates span-timing cost.
    let gate_pct = overhead_vs("enabled", "runtime_disabled");
    // Informational only: spans two builds with different code layout.
    let enabled_pct = overhead_vs("enabled", "compiled_out");
    // Gated (loosely): runtime_disabled carries the full tracing-capable
    // code (span/trace branches compiled in, gated off by one atomic load),
    // so its delta against compiled_out bounds the tracing-off residual.
    // The comparison spans two builds, so the budget must absorb layout
    // variance — default 2%, overridable for noisy hosts.
    let runtime_off_pct = overhead_vs("runtime_disabled", "compiled_out");
    let trace_off_max: f64 = std::env::var("SEQGE_TRACE_OFF_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let trace_off_pass = runtime_off_pct.map(|p| p <= trace_off_max);
    let pass = gate_pct.map(|p| p <= max_pct && trace_off_pass != Some(false));

    let mut record = vec![
        ("dataset".to_string(), Value::Str("cora".to_string())),
        ("scale".to_string(), Value::F64(args.scale)),
        ("dim".to_string(), Value::U64(dim as u64)),
        ("reps_best_of".to_string(), Value::U64(REPS as u64)),
        ("walker_threads".to_string(), Value::U64(THREADS as u64)),
        ("arms".to_string(), Value::Object(arms)),
        ("max_overhead_pct".to_string(), Value::F64(max_pct)),
    ];
    if let Some(p) = gate_pct {
        record.push(("overhead_enabled_vs_runtime_disabled_pct".to_string(), Value::F64(p)));
        println!("overhead enabled vs runtime_disabled: {p:+.2}% (budget {max_pct}%, gated)");
    }
    if let Some(p) = enabled_pct {
        record.push(("overhead_enabled_vs_compiled_out_pct".to_string(), Value::F64(p)));
        println!("overhead enabled vs compiled_out: {p:+.2}% (informational)");
    }
    if let Some(p) = runtime_off_pct {
        record.push(("overhead_runtime_disabled_vs_compiled_out_pct".to_string(), Value::F64(p)));
        record.push(("trace_off_max_overhead_pct".to_string(), Value::F64(trace_off_max)));
        println!(
            "overhead runtime_disabled vs compiled_out: {p:+.2}% \
             (tracing-off residual, budget {trace_off_max}%)"
        );
    }
    if let Some(ok) = pass {
        record.push(("pass".to_string(), Value::Bool(ok)));
    } else {
        println!("(compiled-in arms absent; run the default build to compute the gate)");
    }
    record.push((
        "note".to_string(),
        Value::Str(
            "best-of-N wall time of train_all_pipelined on scaled Cora. \
             The primary gate (enabled vs runtime_disabled) runs both \
             arms interleaved in one binary, isolating the span-timing \
             cost from build-to-build code-layout variance. The \
             compiled_out comparisons span two builds whose layout differs \
             for reasons unrelated to instrumentation — negative numbers \
             there mean the recording cost is below build variance. The \
             runtime_disabled-vs-compiled_out delta bounds the residual \
             cost of the tracing-capable code with tracing off and gates \
             at trace_off_max_overhead_pct"
                .to_string(),
        ),
    ));
    write_json(&path, &Value::Object(record)).expect("write json");
    println!("json written to {}", path.display());

    if let Some(false) = pass {
        if gate_pct.is_some_and(|p| p > max_pct) {
            eprintln!(
                "FAIL: span-timing overhead {:.2}% (enabled vs runtime_disabled) exceeds {max_pct}%",
                gate_pct.unwrap_or(f64::NAN)
            );
        }
        if trace_off_pass == Some(false) {
            eprintln!(
                "FAIL: tracing-off residual {:.2}% (runtime_disabled vs compiled_out) \
                 exceeds {trace_off_max}%",
                runtime_off_pct.unwrap_or(f64::NAN)
            );
        }
        std::process::exit(1);
    }
}
