//! Observability-overhead benchmark: proves the `seqge-obs` instrumentation
//! stays inside its <2% budget on the pipelined-training hot path.
//!
//! Three arms over the same workload (`train_all_pipelined` on scaled
//! Cora):
//!
//! * **enabled** — instrumentation compiled in, span timing on (the
//!   default production configuration);
//! * **runtime_disabled** — compiled in, `SEQGE_OBS=off`-equivalent (span
//!   clock reads gated off; counters stay live);
//! * **compiled_out** — built with `--features obs-disabled`, which
//!   forwards to `seqge-obs/disabled` and compiles every recording call to
//!   a no-op.
//!
//! One binary can only run the arms its build supports, so the two builds
//! **merge** into `results/bench_obs.json`: each run replaces its own arms
//! in the existing file and recomputes the overhead once both the
//! `enabled` and `compiled_out` arms are present. `scripts/bench_obs.sh`
//! orchestrates the two builds; the pass threshold comes from
//! `SEQGE_OBS_MAX_OVERHEAD_PCT` (default 2.0).

use seqge_bench::{banner, write_json, Args};
use seqge_core::{train_all_pipelined, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_graph::{Dataset, Graph};
use serde_json::Value;
use std::path::Path;
use std::time::Instant;

const REPS: usize = 5;
const THREADS: usize = 2;

/// Best-of-`REPS` wall time for one full pipelined training run.
fn measure(g: &Graph, cfg: &TrainConfig, ocfg: OsElmConfig, seed: u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut walks = 0u64;
    for _ in 0..REPS {
        let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
        let t = Instant::now();
        let out = train_all_pipelined(g, &mut m, cfg, seed, THREADS);
        best = best.min(t.elapsed().as_secs_f64());
        walks = out.walks_trained as u64;
    }
    (best, walks)
}

fn arm_record(wall_s: f64, walks: u64) -> Value {
    Value::Object(vec![
        ("wall_s".to_string(), Value::F64(wall_s)),
        ("walks".to_string(), Value::U64(walks)),
        ("walks_per_sec".to_string(), Value::F64(walks as f64 / wall_s)),
    ])
}

fn arm_wall(arms: &[(String, Value)], name: &str) -> Option<f64> {
    arms.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get("wall_s")).and_then(Value::as_f64)
}

fn main() {
    let args = Args::parse(0.3);
    banner("observability overhead (obs on vs runtime-off vs compiled-out)", args.scale);

    let dim = *args.dims.first().unwrap_or(&32);
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = args.seed;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
    let g = Dataset::Cora.generate_scaled(args.scale, args.seed);
    println!(
        "cora scale {}: {} nodes / {} edges, d={dim}, {} reps (best-of), {} walker thread(s)",
        args.scale,
        g.num_nodes(),
        g.num_edges(),
        REPS,
        THREADS
    );

    // Warm-up run so page faults and allocator growth hit no arm.
    let _ = measure(&g, &cfg, ocfg, args.seed);

    let mut fresh: Vec<(String, Value)> = Vec::new();
    if seqge_obs::COMPILED {
        seqge_obs::set_timing_enabled(true);
        let (wall, walks) = measure(&g, &cfg, ocfg, args.seed);
        println!("  enabled          {:.3} s   {:.0} walks/s", wall, walks as f64 / wall);
        fresh.push(("enabled".to_string(), arm_record(wall, walks)));

        seqge_obs::set_timing_enabled(false);
        let (wall, walks) = measure(&g, &cfg, ocfg, args.seed);
        println!("  runtime_disabled {:.3} s   {:.0} walks/s", wall, walks as f64 / wall);
        fresh.push(("runtime_disabled".to_string(), arm_record(wall, walks)));
        seqge_obs::set_timing_enabled(true);
    } else {
        let (wall, walks) = measure(&g, &cfg, ocfg, args.seed);
        println!("  compiled_out     {:.3} s   {:.0} walks/s", wall, walks as f64 / wall);
        fresh.push(("compiled_out".to_string(), arm_record(wall, walks)));
    }

    // Merge with whatever a previous build's run left behind.
    let path = args.json.clone().unwrap_or_else(|| Path::new("results/bench_obs.json").into());
    let mut arms: Vec<(String, Value)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .and_then(|v| match v.get("arms") {
            Some(Value::Object(pairs)) => Some(pairs.clone()),
            _ => None,
        })
        .unwrap_or_default();
    for (name, rec) in fresh {
        arms.retain(|(n, _)| *n != name);
        arms.push((name, rec));
    }
    arms.sort_by(|a, b| a.0.cmp(&b.0));

    let max_pct: f64 = std::env::var("SEQGE_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let overhead = |arm: &str| -> Option<f64> {
        let base = arm_wall(&arms, "compiled_out")?;
        Some((arm_wall(&arms, arm)? - base) / base * 100.0)
    };
    let enabled_pct = overhead("enabled");
    let runtime_off_pct = overhead("runtime_disabled");
    let pass = enabled_pct.map(|p| p <= max_pct);

    let mut record = vec![
        ("dataset".to_string(), Value::Str("cora".to_string())),
        ("scale".to_string(), Value::F64(args.scale)),
        ("dim".to_string(), Value::U64(dim as u64)),
        ("reps_best_of".to_string(), Value::U64(REPS as u64)),
        ("walker_threads".to_string(), Value::U64(THREADS as u64)),
        ("arms".to_string(), Value::Object(arms)),
        ("max_overhead_pct".to_string(), Value::F64(max_pct)),
    ];
    if let Some(p) = enabled_pct {
        record.push(("overhead_enabled_vs_compiled_out_pct".to_string(), Value::F64(p)));
        println!("overhead enabled vs compiled_out: {p:+.2}% (budget {max_pct}%)");
    }
    if let Some(p) = runtime_off_pct {
        record.push(("overhead_runtime_disabled_vs_compiled_out_pct".to_string(), Value::F64(p)));
        println!("overhead runtime_disabled vs compiled_out: {p:+.2}%");
    }
    if let Some(ok) = pass {
        record.push(("pass".to_string(), Value::Bool(ok)));
    } else {
        println!("(one arm so far; run the other build to compute overhead)");
    }
    record.push((
        "note".to_string(),
        Value::Str(
            "best-of-N wall time of train_all_pipelined on scaled Cora. \
             The two builds differ in code layout as well as \
             instrumentation, so negative overhead means the recording \
             cost is below build-to-build variance; the enabled vs \
             runtime_disabled arms share one binary and isolate the \
             span-timing cost alone"
                .to_string(),
        ),
    ));
    write_json(&path, &Value::Object(record)).expect("write json");
    println!("json written to {}", path.display());

    if let Some(false) = pass {
        eprintln!(
            "FAIL: instrumentation overhead {:.2}% exceeds {max_pct}%",
            enabled_pct.unwrap_or(f64::NAN)
        );
        std::process::exit(1);
    }
}
