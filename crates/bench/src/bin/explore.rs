//! Design-space exploration report — quantifies §4.5's closing remark
//! ("a further speedup by higher parallelism would be possible if more BRAM
//! and DSP resources are available") using the calibrated resource and
//! timing models.

use seqge_bench::{banner, write_json, Args};
use seqge_fpga::explore::{best_feasible, explore, XCZU15EG, XCZU9EG};
use seqge_fpga::report::{ms, TextTable};
use seqge_fpga::FpgaDevice;

fn main() {
    let args = Args::parse(1.0);
    banner("Design-space exploration (what a bigger FPGA buys)", args.scale);

    let devices = [FpgaDevice::XCZU7EV, XCZU9EG, XCZU15EG];
    let mut json_rows = Vec::new();

    for &dim in &args.dims {
        println!("d = {dim}:");
        let mut t = TextTable::new([
            "device",
            "best lanes",
            "port B/cyc",
            "DSP",
            "BRAM",
            "walk ms",
            "vs paper build",
        ]);
        let paper_ms = seqge_fpga::TimingModel::default().paper_walk_millis(dim);
        for dev in &devices {
            match best_feasible(dim, dev) {
                Some(p) => {
                    t.row([
                        dev.name.to_string(),
                        p.design.mac_lanes.to_string(),
                        p.port_bytes.to_string(),
                        p.dsp.to_string(),
                        p.bram.to_string(),
                        ms(p.walk_ms),
                        format!("{:.2}x", paper_ms / p.walk_ms),
                    ]);
                    json_rows.push(serde_json::json!({
                        "dim": dim, "device": dev.name, "point": p,
                    }));
                }
                None => {
                    t.row([
                        dev.name.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "infeasible".into(),
                    ]);
                }
            }
        }
        println!("{}", t.render());
        let total = explore(dim, &FpgaDevice::XCZU7EV).len();
        println!("  ({total} variants enumerated per device)");
        println!();
    }
    println!("(the paper's own build is the XCZU7EV baseline row; larger parts admit");
    println!(" wider β ports and more MAC lanes, cutting the traffic-bound walk latency)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
