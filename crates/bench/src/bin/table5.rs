//! Table 5 — model sizes (MB) of the original and proposed models.
//!
//! Analytic (see `seqge_core::model_size` for the formulas and their ~4 %
//! agreement with the paper), cross-checked against the live structs'
//! actual heap footprints.

use seqge_bench::{banner, write_json, Args};
use seqge_core::model::EmbeddingModel;
use seqge_core::model_size::{alias_table_bytes, reduction_factor, table5_rows, to_mb};
use seqge_core::{ModelConfig, OsElmConfig, OsElmSkipGram, SkipGram};
use seqge_fpga::report::TextTable;
use seqge_graph::Dataset;

fn main() {
    let args = Args::parse(1.0);
    banner("Table 5 — model sizes (decimal MB)", args.scale);

    let mut t = TextTable::new([
        "dataset",
        "d",
        "original MB",
        "paper",
        "proposed MB",
        "paper",
        "reduction",
    ]);
    for row in table5_rows() {
        let n = Dataset::ALL
            .iter()
            .find(|d| d.short_name() == row.dataset)
            .map(|d| d.spec().num_nodes)
            .expect("known dataset");
        t.row([
            row.dataset.to_string(),
            row.dim.to_string(),
            format!("{:.3}", row.original_mb),
            format!("{:.3}", row.paper_original_mb),
            format!("{:.3}", row.proposed_mb),
            format!("{:.3}", row.paper_proposed_mb),
            format!("{:.2}x", reduction_factor(n, row.dim)),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: proposed up to 3.82x smaller)");
    println!();

    // Live-struct cross-check at one point.
    let n = Dataset::Cora.spec().num_nodes;
    let sg = SkipGram::new(n, ModelConfig::paper_defaults(32));
    let os = OsElmSkipGram::new(n, OsElmConfig::paper_defaults(32));
    println!(
        "live structs (cora, d=32): original {:.3} MB, proposed {:.3} MB (+{:.3} MB alias table)",
        to_mb(sg.model_bytes()),
        to_mb(os.model_bytes()),
        to_mb(alias_table_bytes(n)),
    );

    if let Some(path) = &args.json {
        write_json(path, &table5_rows()).expect("write json");
        println!("json written to {}", path.display());
    }
}
