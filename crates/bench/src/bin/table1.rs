//! Table 1 (dataset statistics) and Table 2 (hyper-parameters).
//!
//! Verifies the synthetic stand-in graphs against the published statistics
//! and prints the node2vec configuration every other experiment uses.

use seqge_bench::{banner, write_json, Args};
use seqge_core::TrainConfig;
use seqge_fpga::report::TextTable;
use seqge_graph::stats::{degree_stats, label_homophily};
use seqge_graph::Dataset;

fn main() {
    let args = Args::parse(1.0);
    banner("Table 1 (datasets) & Table 2 (hyper-parameters)", args.scale);

    let mut t =
        TextTable::new(["dataset", "nodes", "edges", "classes", "avg deg", "max deg", "homophily"]);
    let mut json_rows = Vec::new();
    for ds in Dataset::ALL {
        let spec = ds.spec();
        let g = if args.scale >= 1.0 {
            ds.generate(args.seed)
        } else {
            ds.generate_scaled(args.scale, args.seed)
        };
        let degs = degree_stats(&g);
        let hom = label_homophily(&g).unwrap_or(0.0);
        t.row([
            ds.full_name().to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.num_classes().to_string(),
            format!("{:.2}", degs.mean),
            degs.max.to_string(),
            format!("{hom:.3}"),
        ]);
        json_rows.push(serde_json::json!({
            "dataset": ds.short_name(),
            "spec": spec,
            "generated_nodes": g.num_nodes(),
            "generated_edges": g.num_edges(),
            "homophily": hom,
        }));
    }
    println!("{}", t.render());
    println!("(paper Table 1: cora 2708/5429/7, ampt 7650/143663/8, amcp 13752/287209/10)");
    println!();

    let cfg = TrainConfig::paper_defaults(32);
    let mut t2 = TextTable::new(["p", "q", "r", "l", "w", "# negative samples"]);
    t2.row([
        cfg.walk.p.to_string(),
        cfg.walk.q.to_string(),
        cfg.walk.walks_per_node.to_string(),
        cfg.walk.walk_length.to_string(),
        cfg.model.window.to_string(),
        cfg.model.negative_samples.to_string(),
    ]);
    println!("Table 2 — node2vec hyper-parameters (paper: 0.5 / 1.0 / 10 / 80 / 8 / 10)");
    println!("{}", t2.render());

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
