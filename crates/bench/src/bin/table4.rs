//! Table 4 — training time of a single random walk vs a desktop CPU.
//!
//! Direct host measurements (no scaling model): the paper compares its FPGA
//! against a Core i7-11700; here the software rows are measured on this
//! machine's CPU and the FPGA row comes from the calibrated cycle model.
//! Expected shape: the FPGA advantage grows with dimension and the
//! proposed-vs-original CPU ratio stays above 1.

use seqge_bench::{banner, prepared_walks, time_walk_training, write_json, Args};
use seqge_core::{OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig};
use seqge_fpga::report::{ms, speedup, TextTable};
use seqge_fpga::TimingModel;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

/// Paper Table 4 rows: (dim, original i7 ms, proposed i7 ms, FPGA ms).
const PAPER: [(usize, f64, f64, f64); 3] =
    [(32, 1.309, 0.787, 0.777), (64, 2.293, 1.426, 0.878), (96, 3.285, 2.396, 0.985)];

fn main() {
    let args = Args::parse(1.0);
    banner("Table 4 — training time of a single random walk (desktop CPU vs FPGA)", args.scale);

    let cfg32 = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, args.scale.min(1.0), &cfg32, args.seed);
    let walks: Vec<_> = prep.walks.iter().take(400).cloned().collect();
    let timing = TimingModel::default();

    let mut table = TextTable::new([
        "d",
        "orig host ms",
        "prop host ms",
        "FPGA-sim ms",
        "prop vs orig",
        "FPGA vs orig",
        "FPGA vs prop",
        "paper: orig/prop/FPGA",
    ]);
    let mut json_rows = Vec::new();

    for &dim in &args.dims {
        let cfg = TrainConfig::paper_defaults(dim);
        let mut rng = Rng64::seed_from_u64(args.seed);

        let mut orig = SkipGram::new(prep.graph.num_nodes(), cfg.model);
        let t_orig = time_walk_training(&mut orig, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        let mut prop = OsElmSkipGram::new(prep.graph.num_nodes(), ocfg);
        let t_prop = time_walk_training(&mut prop, &walks, &prep.table, &mut rng, 1.0) * 1e3;

        let t_fpga = timing.paper_walk_millis(dim);
        let paper = PAPER.iter().find(|p| p.0 == dim);

        table.row([
            dim.to_string(),
            ms(t_orig),
            ms(t_prop),
            ms(t_fpga),
            speedup(t_orig / t_prop),
            speedup(t_orig / t_fpga),
            speedup(t_prop / t_fpga),
            paper.map_or("-".into(), |p| format!("{}/{}/{}", p.1, p.2, p.3)),
        ]);
        json_rows.push(serde_json::json!({
            "dim": dim,
            "original_host_ms": t_orig,
            "proposed_host_ms": t_prop,
            "fpga_sim_ms": t_fpga,
            "paper": paper.map(|p| serde_json::json!({"orig_i7": p.1, "prop_i7": p.2, "fpga": p.3})),
        }));
    }

    println!("{}", table.render());
    println!("(paper speedups vs i7: FPGA/original 1.69x / 2.61x / 3.34x;");
    println!(" FPGA/proposed 1.01x / 1.62x / 2.43x — note this host may be faster than");
    println!(" the paper's i7-11700, shifting absolute ratios while preserving the trend)");

    if let Some(path) = &args.json {
        write_json(path, &json_rows).expect("write json");
        println!("json written to {}", path.display());
    }
}
