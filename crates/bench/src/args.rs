//! Minimal CLI parsing (no external dependency).

use std::path::PathBuf;

/// Common experiment-binary arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Dataset/stream scale in (0, 1].
    pub scale: f64,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Embedding dimensions to sweep.
    pub dims: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    /// Dataset short names to run (default: all three).
    pub datasets: Vec<String>,
    /// Free-form extras (binary-specific flags like `--source beta`).
    pub extras: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args`, with a per-binary default scale.
    pub fn parse(default_scale: f64) -> Self {
        Self::parse_from(std::env::args().skip(1), default_scale)
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I, default_scale: f64) -> Self {
        let mut args = Args {
            scale: default_scale,
            json: None,
            dims: vec![32, 64, 96],
            seed: 42,
            datasets: vec!["cora".into(), "ampt".into(), "amcp".into()],
            extras: Vec::new(),
        };
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = take("--scale").parse().expect("--scale expects a float");
                    assert!(args.scale > 0.0 && args.scale <= 1.0, "--scale must be in (0, 1]");
                }
                "--json" => args.json = Some(PathBuf::from(take("--json"))),
                "--dims" => {
                    args.dims = take("--dims")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--dims expects integers"))
                        .collect();
                    assert!(!args.dims.is_empty(), "--dims must not be empty");
                }
                "--seed" => args.seed = take("--seed").parse().expect("--seed expects an integer"),
                "--datasets" => {
                    args.datasets =
                        take("--datasets").split(',').map(|s| s.trim().to_string()).collect();
                    assert!(!args.datasets.is_empty(), "--datasets must not be empty");
                }
                "--help" | "-h" => {
                    println!(
                        "common flags: --scale <f in (0,1]>  --json <path>  --dims a,b,c  \
                         --datasets cora,ampt,amcp  --seed <n>"
                    );
                    std::process::exit(0);
                }
                other if other.starts_with("--") => {
                    let key = other.trim_start_matches("--").to_string();
                    let val = it.next().unwrap_or_default();
                    args.extras.push((key, val));
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        args
    }

    /// The [`seqge_graph::Dataset`]s selected by `--datasets`.
    pub fn selected_datasets(&self) -> Vec<seqge_graph::Dataset> {
        use seqge_graph::Dataset;
        self.datasets
            .iter()
            .map(|name| {
                Dataset::ALL
                    .into_iter()
                    .find(|d| d.short_name() == name)
                    .unwrap_or_else(|| panic!("unknown dataset `{name}`"))
            })
            .collect()
    }

    /// Looks up a binary-specific extra flag.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = Args::parse_from(sv(&[]), 0.25);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.dims, vec![32, 64, 96]);
        assert_eq!(a.seed, 42);
        assert!(a.json.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = Args::parse_from(
            sv(&["--scale", "0.5", "--json", "/tmp/x.json", "--dims", "8,16", "--seed", "7"]),
            1.0,
        );
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.json.as_ref().unwrap().to_str().unwrap(), "/tmp/x.json");
        assert_eq!(a.dims, vec![8, 16]);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn extras_are_collected() {
        let a = Args::parse_from(sv(&["--source", "beta", "--mu", "0.05"]), 1.0);
        assert_eq!(a.extra("source"), Some("beta"));
        assert_eq!(a.extra("mu"), Some("0.05"));
        assert_eq!(a.extra("missing"), None);
    }

    #[test]
    #[should_panic(expected = "--scale must be in (0, 1]")]
    fn rejects_bad_scale() {
        Args::parse_from(sv(&["--scale", "2.0"]), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_positional() {
        Args::parse_from(sv(&["oops"]), 1.0);
    }
}
