//! Dataset and walk preparation shared by the experiment binaries.

use seqge_core::TrainConfig;
use seqge_graph::{Dataset, Graph, NodeId};
use seqge_sampling::{generate_corpus, NegativeTable, Rng64, UpdatePolicy, WalkCorpus, Walker};

/// A dataset instantiated at some scale, with its walk corpus and a ready
/// negative table.
pub struct PreparedGraph {
    /// Which dataset.
    pub dataset: Dataset,
    /// The labelled graph.
    pub graph: Graph,
    /// The walk corpus (appearance counts).
    pub corpus: WalkCorpus,
    /// Pre-generated walks (`r` per node).
    pub walks: Vec<Vec<NodeId>>,
    /// Negative table built from the corpus.
    pub table: NegativeTable,
}

/// Generates `dataset` at `scale`, runs the full walk pass, and builds the
/// negative table.
pub fn prepared_walks(dataset: Dataset, scale: f64, cfg: &TrainConfig, seed: u64) -> PreparedGraph {
    let graph =
        if scale >= 1.0 { dataset.generate(seed) } else { dataset.generate_scaled(scale, seed) };
    let csr = graph.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed ^ 0xBEEF);
    let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    PreparedGraph { dataset, graph, corpus, walks, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_graph_is_consistent() {
        let cfg = {
            let mut c = TrainConfig::paper_defaults(16);
            c.walk.walk_length = 10;
            c.walk.walks_per_node = 2;
            c
        };
        let p = prepared_walks(Dataset::Cora, 0.05, &cfg, 1);
        assert!(p.graph.num_nodes() >= 28);
        assert_eq!(p.walks.len(), p.corpus.num_walks());
        assert!(p.table.is_ready());
        assert_eq!(p.graph.num_classes(), 7);
    }
}
