//! Streamed stochastic-block-model synthesis for million-node read-path
//! benchmarks.
//!
//! The materializing generator in `seqge-graph` builds the full adjacency
//! up front — fine at paper scale, hopeless at 10^6 nodes on a CI box. The
//! benchmarks here need two things that stream in O(1) memory instead:
//!
//! * [`SbmStream`] — an edge iterator drawing from a planted-partition SBM
//!   with *striped* block assignment (`block(v) = v % blocks`), so the
//!   cluster's residue-class sharding spreads every community evenly
//!   across shards rather than handing whole communities to one shard;
//! * [`clustered_embeddings`] — the embedding matrix such a graph trains
//!   into (per-block Gaussian centers plus noise), letting read-path
//!   benchmarks measure topk at 10^5–10^6 nodes without paying hours of
//!   training for geometry we can state in closed form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqge_linalg::Mat;

/// Parameters of a streamed planted-partition SBM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbmStreamParams {
    /// Nodes (block of `v` is `v % blocks`).
    pub nodes: usize,
    /// Edges the stream emits before ending.
    pub edges: usize,
    /// Communities.
    pub blocks: usize,
    /// Probability that an edge stays inside its endpoint's block.
    pub intra: f64,
    /// Stream seed (same seed → same edge sequence).
    pub seed: u64,
}

impl SbmStreamParams {
    /// A planted partition at `nodes` scale: 16 edges per node on average,
    /// `blocks ≈ √nodes` capped to keep blocks ≥ 64 nodes, 80% intra.
    pub fn sized(nodes: usize, seed: u64) -> Self {
        let blocks = ((nodes as f64).sqrt() as usize).clamp(2, (nodes / 64).max(2));
        SbmStreamParams { nodes, edges: nodes * 16, blocks, intra: 0.8, seed }
    }
}

/// The edge stream itself — `Iterator<Item = (u32, u32)>`, O(1) state.
#[derive(Debug)]
pub struct SbmStream {
    params: SbmStreamParams,
    rng: StdRng,
    emitted: usize,
}

impl SbmStream {
    /// Starts the stream (deterministic in `params.seed`).
    pub fn new(params: SbmStreamParams) -> Self {
        assert!(params.nodes >= 2 * params.blocks, "need ≥ 2 nodes per block");
        assert!(params.blocks >= 2, "need ≥ 2 blocks");
        let rng = StdRng::seed_from_u64(params.seed);
        SbmStream { params, rng, emitted: 0 }
    }

    /// The generating parameters.
    pub fn params(&self) -> &SbmStreamParams {
        &self.params
    }

    /// A peer of `u` inside its own block (never `u` itself): same residue
    /// class mod `blocks`, uniform over the block's other members.
    fn intra_peer(&mut self, u: u32) -> u32 {
        let b = self.params.blocks as u32;
        let block_size = ((self.params.nodes as u32 - 1 - u % b) / b) + 1;
        loop {
            let v = u % b + b * self.rng.gen_range(0..block_size);
            if v != u {
                return v;
            }
        }
    }
}

impl Iterator for SbmStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.emitted >= self.params.edges {
            return None;
        }
        self.emitted += 1;
        let n = self.params.nodes as u32;
        let u = self.rng.gen_range(0..n);
        let v = if self.rng.gen_bool(self.params.intra) {
            self.intra_peer(u)
        } else {
            loop {
                let v = self.rng.gen_range(0..n);
                if v != u {
                    break v;
                }
            }
        };
        Some((u, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.params.edges - self.emitted;
        (left, Some(left))
    }
}

/// The embedding geometry a planted-partition graph trains into: one unit
/// Gaussian center per block, each node at its block's center plus
/// `noise`-scaled Gaussian jitter. Deterministic in `seed`; block of node
/// `v` is `v % blocks`, matching [`SbmStream`].
pub fn clustered_embeddings(
    nodes: usize,
    dim: usize,
    blocks: usize,
    noise: f32,
    seed: u64,
) -> Mat<f32> {
    assert!(blocks >= 1 && dim >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let centers = Mat::from_fn(blocks, dim, |_, _| gauss(&mut rng));
    Mat::from_fn(nodes, dim, |v, c| centers.row(v % blocks)[c] + noise * gauss(&mut rng))
}

/// One standard-normal draw (Box–Muller; only the cosine branch, which
/// costs an extra uniform per sample but keeps the state trivial).
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_exact_length() {
        let p = SbmStreamParams { nodes: 1_000, edges: 5_000, blocks: 10, intra: 0.8, seed: 7 };
        let a: Vec<_> = SbmStream::new(p).collect();
        let b: Vec<_> = SbmStream::new(p).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.iter().all(|&(u, v)| u != v && u < 1_000 && v < 1_000));
        let (lo, hi) = SbmStream::new(p).size_hint();
        assert_eq!((lo, hi), (5_000, Some(5_000)));
    }

    #[test]
    fn intra_fraction_is_roughly_honored() {
        let p = SbmStreamParams { nodes: 2_000, edges: 20_000, blocks: 20, intra: 0.8, seed: 3 };
        let intra = SbmStream::new(p).filter(|&(u, v)| u % 20 == v % 20).count();
        let f = intra as f64 / 20_000.0;
        // 0.8 intra plus the ~1/20 of cross edges that land in-block anyway.
        assert!((0.75..0.92).contains(&f), "intra fraction {f}");
    }

    #[test]
    fn sized_params_scale_blocks_with_n() {
        let p = SbmStreamParams::sized(100_000, 1);
        assert_eq!(p.blocks, 316);
        assert_eq!(p.edges, 1_600_000);
        let small = SbmStreamParams::sized(200, 1);
        assert!(small.blocks >= 2 && small.nodes / small.blocks >= 64);
    }

    #[test]
    fn embeddings_cluster_by_block() {
        let emb = clustered_embeddings(400, 16, 8, 0.2, 9);
        let cos = |a: &[f32], b: &[f32]| {
            let (mut d, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
            for i in 0..16 {
                d += a[i] * b[i];
                na += a[i] * a[i];
                nb += b[i] * b[i];
            }
            d / (na.sqrt() * nb.sqrt())
        };
        // Same-block pairs hug their shared center; cross-block pairs are
        // near-orthogonal random Gaussians.
        let same = cos(emb.row(0), emb.row(8));
        let cross = cos(emb.row(0), emb.row(1));
        assert!(same > 0.6, "same-block cosine {same}");
        assert!(cross < same, "cross-block {cross} vs same-block {same}");
        // Determinism.
        assert_eq!(emb.row(13), clustered_embeddings(400, 16, 8, 0.2, 9).row(13));
    }
}
