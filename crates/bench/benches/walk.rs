//! Random-walk kernel throughput: exact cumulative inversion vs rejection
//! sampling (the strategy trade-off behind FPGA walkers like LightRW \[6\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_graph::Dataset;
use seqge_sampling::{Node2VecParams, Rng64, StepStrategy, Walker};

fn bench_walks(c: &mut Criterion) {
    let g = Dataset::AmazonPhoto.generate_scaled(0.2, 1);
    let csr = g.to_csr();
    let mut group = c.benchmark_group("walk80");
    for (name, strategy) in
        [("cumulative", StepStrategy::Cumulative), ("rejection", StepStrategy::Rejection)]
    {
        for &(p, q) in &[(0.5, 1.0), (0.25, 4.0), (4.0, 0.25)] {
            let params = Node2VecParams { p, q, ..Default::default() };
            group.bench_function(BenchmarkId::new(name, format!("p{p}_q{q}")), |b| {
                let mut walker = Walker::with_strategy(params, strategy);
                let mut rng = Rng64::seed_from_u64(3);
                let mut buf = Vec::with_capacity(80);
                let mut start = 0u32;
                b.iter(|| {
                    walker.walk_into(&csr, start % csr.num_nodes() as u32, &mut rng, &mut buf);
                    start = start.wrapping_add(1);
                    buf.len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
