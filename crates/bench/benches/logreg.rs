//! Downstream-evaluation cost: one-vs-rest logistic regression fit and
//! prediction throughput at the paper's evaluation shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_eval::{LogRegConfig, OneVsRest};
use seqge_linalg::Mat;

fn synthetic(n: usize, d: usize, k: usize) -> (Mat<f32>, Vec<u16>) {
    let labels: Vec<u16> = (0..n).map(|i| (i % k) as u16).collect();
    let feats = Mat::from_fn(n, d, |r, c| {
        let cls = labels[r] as usize;
        if c % k == cls {
            1.0 + ((r * 13 + c) % 7) as f32 * 0.01
        } else {
            ((r * 31 + c * 7) % 11) as f32 * 0.02
        }
    });
    (feats, labels)
}

fn bench_logreg(c: &mut Criterion) {
    let mut group = c.benchmark_group("logreg");
    for &(n, d, k) in &[(500usize, 32usize, 7usize), (1000, 64, 10)] {
        let (x, y) = synthetic(n, d, k);
        let idx: Vec<usize> = (0..n).collect();
        let cfg = LogRegConfig { epochs: 10, ..Default::default() };
        group.bench_function(BenchmarkId::new("fit_10epochs", format!("n{n}_d{d}_k{k}")), |b| {
            b.iter(|| OneVsRest::fit(&x, &y, &idx, k, &cfg));
        });
        let model = OneVsRest::fit(&x, &y, &idx, k, &cfg);
        group.bench_function(BenchmarkId::new("predict_all", format!("n{n}_d{d}_k{k}")), |b| {
            b.iter(|| model.predict_all(&x, &idx).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logreg);
criterion_main!(benches);
