//! End-to-end corpus+train throughput: the serial generate-then-train
//! loop vs the overlapped walker/trainer pipeline, at the paper's three
//! embedding dimensions.
//!
//! Both arms measure the full scenario — walk generation, negative-table
//! build, and OS-ELM training — so the pipeline's overlap (and its
//! channel overhead, on single-core boxes) shows up as wall-clock.
//! `results/bench_pipeline.json` (emitted by the `table3` binary) records
//! the same comparison plus the unvectorized-kernel reference baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_core::{
    train_all_pipelined, train_all_scenario, OsElmConfig, OsElmSkipGram, TrainConfig,
};
use seqge_graph::Dataset;

/// Walker threads for the pipelined arm (the determinism contract makes
/// the trained model identical for any value; 2 demonstrates overlap
/// wherever a second core exists).
const PIPELINE_THREADS: usize = 2;

fn scenario_cfg(dim: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(dim);
    // Shorter corpus than the paper protocol so a bench iteration stays
    // sub-second; the gen/train cost ratio is preserved.
    cfg.walk.walk_length = 40;
    cfg.walk.walks_per_node = 2;
    cfg
}

fn bench_pipeline(c: &mut Criterion) {
    let graph = Dataset::Cora.generate_scaled(0.1, 1);
    let n = graph.num_nodes();

    let mut group = c.benchmark_group("corpus_train");
    group.sample_size(10);
    for &dim in &[32usize, 64, 96] {
        let cfg = scenario_cfg(dim);
        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };

        group.bench_function(BenchmarkId::new("serial", dim), |b| {
            b.iter(|| {
                let mut m = OsElmSkipGram::new(n, ocfg);
                train_all_scenario(&graph, &mut m, &cfg, 7);
                m
            });
        });
        group.bench_function(BenchmarkId::new("pipelined", dim), |b| {
            b.iter(|| {
                let mut m = OsElmSkipGram::new(n, ocfg);
                let outcome = train_all_pipelined(&graph, &mut m, &cfg, 7, PIPELINE_THREADS);
                (m, outcome)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
