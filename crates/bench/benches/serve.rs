//! Serving-path micro-benchmarks: one request round-trip over loopback
//! TCP against a live `seqge-serve` daemon.
//!
//! Complements `bench_serve` (the binary records p50/p99 percentiles and
//! ingest throughput into `results/bench_serve.json`; this harness tracks
//! per-operation means for regression comparison). The server boots once
//! per group from a 0.1-scale Cora spanning forest and the client reuses
//! one connection, so the measured cost is request framing + JSON +
//! snapshot read, not connection setup.

use criterion::{criterion_group, criterion_main, Criterion};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_eval::EdgeOp;
use seqge_graph::{spanning_forest, Dataset};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_cold, start, Client, ServeConfig, ServerHandle};

const DIM: usize = 32;
const SEED: u64 = 42;

fn boot() -> (ServerHandle, Client, Vec<(u32, u32)>, usize) {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.model.seed = SEED;
    // A short corpus keeps boot sub-second; query cost is corpus-free.
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 1;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(DIM) };
    let full = Dataset::Cora.generate_scaled(0.1, SEED);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let n = initial.num_nodes();
    let (model, inc) = boot_cold(&initial, &cfg, ocfg, UpdatePolicy::every_edge(), SEED);
    let handle =
        start("127.0.0.1:0", initial, model, inc, ServeConfig::default()).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client, split.removed_edges, n)
}

fn bench_serve(c: &mut Criterion) {
    let (handle, mut client, stream, num_nodes) = boot();
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    let mut i = 0u32;
    group.bench_function("get_embedding", |b| {
        b.iter(|| {
            i = (i + 131) % num_nodes as u32;
            client.get_embedding(i).unwrap()
        });
    });
    group.bench_function("topk10_cosine", |b| {
        b.iter(|| {
            i = (i + 131) % num_nodes as u32;
            client.topk(i, 10, EdgeOp::Cosine).unwrap()
        });
    });
    group.bench_function("score_link_dot", |b| {
        b.iter(|| {
            i = (i + 131) % num_nodes as u32;
            client.score_link(i, (i + 1) % num_nodes as u32, EdgeOp::Dot).unwrap()
        });
    });

    // Ingest: each iteration trains one edge event end-to-end (queue,
    // walk restarts from both endpoints, OS-ELM update, republication —
    // flush is the barrier). Toggling add/remove keeps the graph state
    // stable across iterations.
    let mut j = 0usize;
    let mut pending_add = true;
    group.bench_function("ingest_edge_flush", |b| {
        b.iter(|| {
            let (u, v) = stream[j % stream.len()];
            if pending_add {
                client.add_edge(u, v).unwrap();
            } else {
                client.remove_edge(u, v).unwrap();
                j += 1;
            }
            pending_add = !pending_add;
            client.flush().unwrap()
        });
    });
    group.finish();
    handle.shutdown().expect("shutdown");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
