//! Per-walk training-kernel throughput: every model × the paper's three
//! embedding dimensions (the microbenchmark behind Tables 3/4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_bench::prepared_walks;
use seqge_core::model::EmbeddingModel;
use seqge_core::{
    AlphaOsElm, DataflowOsElm, OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig,
};
use seqge_fpga::Accelerator;
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

fn bench_training(c: &mut Criterion) {
    let cfg32 = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, 0.3, &cfg32, 1);
    let walks: Vec<_> = prep.walks.iter().take(16).cloned().collect();
    let n = prep.graph.num_nodes();

    let mut group = c.benchmark_group("train_walk");
    for &dim in &[32usize, 64, 96] {
        let cfg = TrainConfig::paper_defaults(dim);
        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };

        macro_rules! bench_model {
            ($name:expr, $make:expr) => {
                group.bench_function(BenchmarkId::new($name, dim), |b| {
                    let mut m = $make;
                    let mut rng = Rng64::seed_from_u64(7);
                    let mut i = 0;
                    b.iter(|| {
                        m.train_walk(&walks[i % walks.len()], &prep.table, &mut rng);
                        i += 1;
                    });
                });
            };
        }
        bench_model!("original_sgd", SkipGram::new(n, cfg.model));
        bench_model!("proposed_oselm", OsElmSkipGram::new(n, ocfg));
        bench_model!("dataflow_oselm", DataflowOsElm::new(n, ocfg));
        bench_model!("alpha_oselm", AlphaOsElm::new(n, ocfg));
        bench_model!("fpga_functional", Accelerator::new(n, ocfg));
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
