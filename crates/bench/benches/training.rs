//! Per-walk training-kernel throughput: every model × the paper's three
//! embedding dimensions (the microbenchmark behind Tables 3/4), plus the
//! linalg inner kernels the models are built from — fused vs multi-pass
//! `P` maintenance and unrolled vs sequential-fold dot.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_bench::prepared_walks;
use seqge_core::model::EmbeddingModel;
use seqge_core::{AlphaOsElm, DataflowOsElm, OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig};
use seqge_fpga::Accelerator;
use seqge_graph::Dataset;
use seqge_linalg::{ops, Mat};
use seqge_sampling::Rng64;

fn bench_training(c: &mut Criterion) {
    let cfg32 = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, 0.3, &cfg32, 1);
    let walks: Vec<_> = prep.walks.iter().take(16).cloned().collect();
    let n = prep.graph.num_nodes();

    let mut group = c.benchmark_group("train_walk");
    for &dim in &[32usize, 64, 96] {
        let cfg = TrainConfig::paper_defaults(dim);
        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };

        macro_rules! bench_model {
            ($name:expr, $make:expr) => {
                group.bench_function(BenchmarkId::new($name, dim), |b| {
                    let mut m = $make;
                    let mut rng = Rng64::seed_from_u64(7);
                    let mut i = 0;
                    b.iter(|| {
                        m.train_walk(&walks[i % walks.len()], &prep.table, &mut rng);
                        i += 1;
                    });
                });
            };
        }
        bench_model!("original_sgd", SkipGram::new(n, cfg.model));
        bench_model!("proposed_oselm", OsElmSkipGram::new(n, ocfg));
        bench_model!("dataflow_oselm", DataflowOsElm::new(n, ocfg));
        bench_model!("alpha_oselm", AlphaOsElm::new(n, ocfg));
        bench_model!("fpga_functional", Accelerator::new(n, ocfg));
    }
    group.finish();
}

/// The EW-RLS `P` maintenance sweep: the fused single-pass kernel vs the
/// multi-pass downdate → inflate → trace-cap → symmetrize sequence it
/// replaced, at the paper's three dimensions.
fn bench_p_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("p_maintenance");
    for &dim in &[32usize, 64, 96] {
        let p0 = Mat::from_fn(dim, dim, |r, c| {
            let (lo, hi) = (r.min(c), r.max(c));
            if r == c {
                5.0f32
            } else {
                0.1 * ((lo * dim + hi) as f32 * 0.7).sin()
            }
        });
        let ph: Vec<f32> = (0..dim).map(|i| ((i + 1) as f32 * 0.37).sin()).collect();
        let cap = 10.0 * dim as f32;
        group.bench_function(BenchmarkId::new("fused", dim), |b| {
            let mut p = p0.clone();
            b.iter(|| {
                ops::p_downdate_forget(&mut p, black_box(&ph), 1.37, 1.0 / 0.98, cap);
            });
        });
        group.bench_function(BenchmarkId::new("multipass", dim), |b| {
            let mut p = p0.clone();
            b.iter(|| {
                ops::p_downdate_forget_ref(&mut p, black_box(&ph), 1.37, 1.0 / 0.98, cap);
            });
        });
    }
    group.finish();
}

/// Unrolled 4-accumulator dot vs the sequential fold it replaced — the
/// single hottest operation of the sample stage (one dot per sample).
fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for &dim in &[32usize, 64, 96] {
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
        let y: Vec<f32> = (0..dim).map(|i| (i as f32 * 1.3).cos()).collect();
        group.bench_function(BenchmarkId::new("unrolled", dim), |b| {
            b.iter(|| ops::dot(black_box(&x), black_box(&y)));
        });
        group.bench_function(BenchmarkId::new("sequential", dim), |b| {
            b.iter(|| ops::dot_ref(black_box(&x), black_box(&y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_p_maintenance, bench_dot);
criterion_main!(benches);
