//! Simulator throughput: how many simulated walks per second the functional
//! fixed-point accelerator model processes, and the cost of the timing model
//! itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_bench::prepared_walks;
use seqge_core::model::EmbeddingModel;
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_fpga::{Accelerator, AcceleratorDesign, TimingModel};
use seqge_graph::Dataset;
use seqge_sampling::Rng64;

fn bench_fpga(c: &mut Criterion) {
    let cfg = TrainConfig::paper_defaults(32);
    let prep = prepared_walks(Dataset::Cora, 0.2, &cfg, 1);
    let walks: Vec<_> = prep.walks.iter().take(8).cloned().collect();

    let mut group = c.benchmark_group("fpga_sim");
    for &dim in &[32usize, 64] {
        let ocfg = OsElmConfig {
            model: TrainConfig::paper_defaults(dim).model,
            ..OsElmConfig::paper_defaults(dim)
        };
        group.bench_function(BenchmarkId::new("functional_walk", dim), |b| {
            let mut acc = Accelerator::new(prep.graph.num_nodes(), ocfg);
            let mut rng = Rng64::seed_from_u64(5);
            let mut i = 0;
            b.iter(|| {
                acc.train_walk(&walks[i % walks.len()], &prep.table, &mut rng);
                i += 1;
            });
        });
        group.bench_function(BenchmarkId::new("timing_model_only", dim), |b| {
            let timing = TimingModel::default();
            let design = AcceleratorDesign::for_dim(dim);
            b.iter(|| timing.walk_timing(&design, 73, 77).total_cycles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fpga);
criterion_main!(benches);
