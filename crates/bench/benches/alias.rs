//! Walker alias-table costs: O(n) build vs O(1) sample (the trade-off
//! behind the paper's Fig. 7 update-frequency study), against a linear-scan
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_sampling::{AliasTable, Rng64};

fn weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 2654435761) % 1000) as f64 + 1.0).collect()
}

fn bench_alias(c: &mut Criterion) {
    let mut build = c.benchmark_group("alias_build");
    for &n in &[2708usize, 13_752, 100_000] {
        let w = weights(n);
        build.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| AliasTable::new(&w).len());
        });
    }
    build.finish();

    let mut sample = c.benchmark_group("negative_sample");
    for &n in &[2708usize, 13_752] {
        let w = weights(n);
        let table = AliasTable::new(&w);
        sample.bench_function(BenchmarkId::new("alias_o1", n), |b| {
            let mut rng = Rng64::seed_from_u64(1);
            b.iter(|| table.sample(&mut rng));
        });
        // Baseline: cumulative-sum linear scan, O(n) per draw.
        let cum: Vec<f64> = w
            .iter()
            .scan(0.0, |acc, &x| {
                *acc += x;
                Some(*acc)
            })
            .collect();
        sample.bench_function(BenchmarkId::new("linear_scan", n), |b| {
            let mut rng = Rng64::seed_from_u64(1);
            let total = *cum.last().unwrap();
            b.iter(|| {
                let draw = rng.next_f64() * total;
                cum.iter().position(|&c| c >= draw).unwrap_or(cum.len() - 1)
            });
        });
        // Binary search over the cumulative sums, O(log n).
        sample.bench_function(BenchmarkId::new("binary_search", n), |b| {
            let mut rng = Rng64::seed_from_u64(1);
            let total = *cum.last().unwrap();
            b.iter(|| {
                let draw = rng.next_f64() * total;
                cum.partition_point(|&c| c < draw)
            });
        });
    }
    sample.finish();
}

criterion_group!(benches, bench_alias);
criterion_main!(benches);
