//! Fixed-point datapath costs and accuracy: the Q-format ablation behind
//! the accelerator's number-format choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_fixed::error::roundtrip_error;
use seqge_fixed::ops::{mac_dot, naive_dot};
use seqge_fixed::{Fx, Q8_24};
use seqge_linalg::ops::dot;

fn bench_fixed(c: &mut Criterion) {
    let n = 96;
    let xs_f: Vec<f32> = (0..n).map(|i| ((i * 37) % 100) as f32 / 100.0 - 0.5).collect();
    let ys_f: Vec<f32> = (0..n).map(|i| ((i * 53) % 100) as f32 / 100.0 - 0.5).collect();
    let xs_q = Q8_24::quantize_slice(&xs_f);
    let ys_q = Q8_24::quantize_slice(&ys_f);

    let mut group = c.benchmark_group("dot96");
    group.bench_function("f32", |b| b.iter(|| dot(&xs_f, &ys_f)));
    group.bench_function("q8_24_mac_tree", |b| b.iter(|| mac_dot(&xs_q, &ys_q)));
    group.bench_function("q8_24_naive", |b| b.iter(|| naive_dot(&xs_q, &ys_q)));
    group.finish();

    // Round-trip quantization error across fraction widths (reported via
    // bench labels; asserts the expected monotonicity).
    let vals: Vec<f64> = (0..10_000).map(|i| (i as f64 - 5000.0) * 0.003).collect();
    let e16 = roundtrip_error::<16>(&vals);
    let e20 = roundtrip_error::<20>(&vals);
    let e24 = roundtrip_error::<24>(&vals);
    assert!(e24.rms <= e20.rms && e20.rms <= e16.rms);
    let mut group = c.benchmark_group("quantize_slice_10k");
    for frac in [16u32, 20, 24] {
        group.bench_function(BenchmarkId::from_parameter(frac), |b| {
            b.iter(|| match frac {
                16 => vals.iter().map(|&v| Fx::<16>::from_f64(v).to_bits() as i64).sum::<i64>(),
                20 => vals.iter().map(|&v| Fx::<20>::from_f64(v).to_bits() as i64).sum::<i64>(),
                _ => vals.iter().map(|&v| Fx::<24>::from_f64(v).to_bits() as i64).sum::<i64>(),
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed);
criterion_main!(benches);
