//! Scaling of the data-parallel SGD trainer (parameter averaging) across
//! shard counts — the hpc-parallel extension's microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqge_core::{train_all_parallel, ParallelConfig, SkipGram, TrainConfig};
use seqge_graph::Dataset;

fn bench_parallel(c: &mut Criterion) {
    let g = Dataset::Cora.generate_scaled(0.15, 3);
    let mut cfg = TrainConfig::paper_defaults(32);
    cfg.walk.walks_per_node = 2;
    cfg.walk.walk_length = 40;

    let mut group = c.benchmark_group("parallel_sgd_full_corpus");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                let mut m = SkipGram::new(g.num_nodes(), cfg.model);
                train_all_parallel(&g, &mut m, &cfg, &ParallelConfig { shards, sync_every: 64 }, 9)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
