//! Offline shim for the `rayon` crate.
//!
//! The workspace only uses data-parallel *iterator* entry points
//! (`par_iter`, `par_iter_mut`, `par_chunks_mut`, `into_par_iter`) followed
//! by ordinary adapters (`map`, `zip`, `enumerate`, `for_each`, `collect`,
//! `sum`). Every such use in this repo is an independent-per-item map, so
//! this shim hands back **standard sequential iterators**: semantics are
//! identical, only the speedup is gone. That keeps the whole workspace
//! buildable offline with zero unsafe code; the overlapped
//! producer/consumer pipeline in `seqge-sampling` provides real threading
//! where it matters for the paper's host-side numbers.

/// Number of worker threads a real pool would use on this machine.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs two closures (on two threads, like upstream) and returns both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

pub mod prelude {
    /// `.par_iter()` — sequential `.iter()` under this shim.
    pub trait IntoParallelRefIterator<'data> {
        type Iter;
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `.par_iter_mut()` — sequential `.iter_mut()` under this shim.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    /// `.into_par_iter()` — sequential `.into_iter()` under this shim.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `.par_chunks_mut(n)` — sequential `.chunks_mut(n)` under this shim.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<'data, C> IntoParallelRefIterator<'data> for C
    where
        C: ?Sized + 'data,
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'data, C> IntoParallelRefMutIterator<'data> for C
    where
        C: ?Sized + 'data,
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Iter = C::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6, 8]);

        let mut w = vec![0usize; 6];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(w, [0, 1, 2, 3, 4, 5]);

        let sum: u64 = (0u64..10).into_par_iter().sum();
        assert_eq!(sum, 45);

        let mut buf = vec![0.0f64; 9];
        buf.as_mut_slice().par_chunks_mut(3).enumerate().for_each(|(r, row)| {
            for x in row.iter_mut() {
                *x = r as f64;
            }
        });
        assert_eq!(buf[3..6], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
        assert!(super::current_num_threads() >= 1);
    }
}
