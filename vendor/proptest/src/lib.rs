//! Offline shim for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait (ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `any::<T>()`), the `proptest!` test
//! macro with `ProptestConfig::with_cases`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, by design: case generation is **fully
//! deterministic** (seeded from the test name, so failures reproduce on
//! every run with no persistence files), and there is **no shrinking** — a
//! failing case reports the inputs' debug representation instead.

pub mod collection;
pub mod prelude;
pub mod runner;
pub mod strategy;

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests. Supports the upstream surface this repo uses:
/// an optional `#![proptest_config(...)]` header and `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                $crate::runner::run($cfg, stringify!($name), |__rng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::gen(&__strategies, __rng);
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    (__result, __inputs)
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case (retried without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks one of several same-valued strategies uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
