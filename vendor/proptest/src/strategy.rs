//! Strategies: deterministic value generators driven by [`TestRng`].

/// Internal test RNG (xoshiro256** with SplitMix64 seeding), deterministic
/// per test name so failures reproduce without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)` (Lemire's method, unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (**self).gen(rng)
    }
}

/// Type-erases a strategy (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].gen(rng)
    }
}

/// Full-domain strategy for primitives, `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `any::<T>()` marker strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f64, f32);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_and_union() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let n = (5usize..60).gen(&mut rng);
            assert!((5..60).contains(&n));
            let f = (-2.0f64..3.0).gen(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let (a, b) = ((0u32..4), (10i32..=12)).gen(&mut rng);
            assert!(a < 4 && (10..=12).contains(&b));
        }
        let doubled = (1u64..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.gen(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(7u8))]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match u.gen(&mut rng) {
                1 => seen[0] = true,
                7 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1], "union never picked one branch");
    }

    #[test]
    fn deterministic_per_seed() {
        let strat = (0u64..1000, -1.0f64..1.0);
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(strat.gen(&mut a), strat.gen(&mut b));
        }
    }
}
