//! The case loop behind `proptest!`.

use crate::strategy::TestRng;
use crate::{ProptestConfig, TestCaseError};

/// FNV-1a, used to give each test its own deterministic RNG stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` up to `config.cases` times with fresh deterministic inputs.
/// `case` returns the outcome plus a debug rendering of its inputs (used in
/// the panic message; the shim does not shrink).
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = hash_name(name);
    let max_rejects = config.cases.max(1) * 16;
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(stream));
        stream += 1;
        let (outcome, inputs) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {accepted} \
                     (seed {base:#x}+{})\ninputs: {inputs}\n{msg}",
                    stream - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run(ProptestConfig::with_cases(10), "t", |_rng| {
            count += 1;
            (Ok(()), String::new())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut total = 0;
        let mut kept = 0;
        run(ProptestConfig::with_cases(5), "t2", |rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                (Err(TestCaseError::Reject), String::new())
            } else {
                kept += 1;
                (Ok(()), String::new())
            }
        });
        assert_eq!(kept, 5);
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(ProptestConfig::with_cases(3), "t3", |_rng| {
            (Err(TestCaseError::fail("boom")), "x = 1".to_string())
        });
    }
}
