//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy yielding `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::seed_from_u64(8);
        let fixed = vec(0.0f64..1.0, 7usize);
        assert_eq!(fixed.gen(&mut rng).len(), 7);
        let ranged = vec(0u8..10, 1usize..5);
        for _ in 0..200 {
            let v = ranged.gen(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let nested = vec(vec(0u8..3, 2usize), 3usize);
        let vv = nested.gen(&mut rng);
        assert_eq!((vv.len(), vv[0].len()), (3, 2));
    }
}
