//! Everything a property test needs, mirroring `proptest::prelude`.

pub use crate::strategy::{any, Just, Strategy};
pub use crate::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
