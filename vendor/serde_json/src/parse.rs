//! Recursive-descent JSON parser producing [`serde::Value`] trees.

use crate::Error;
use serde::Value;

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the harness's
                            // own output; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width > 1 {
                        self.pos = start + width;
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    } else {
                        out.push(b as char);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("2.5e2").unwrap(), Value::F64(250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::U64(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_pass_through() {
        assert_eq!(parse("\"héllo ∑\"").unwrap(), Value::Str("héllo ∑".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
    }
}
