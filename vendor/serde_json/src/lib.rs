//! Offline shim for the `serde_json` crate: JSON text ⇄ the vendored
//! [`serde::Value`] tree. Implements the surface the workspace uses —
//! `json!`, `to_string`, `to_string_pretty`, `to_vec`, `from_slice`,
//! `from_str` — with standards-compliant escaping and number handling
//! (non-finite floats serialize as `null`, like upstream).

pub use serde::Value;

use serde::{Deserialize, Serialize};

mod parse;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] (the `json!` back end).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON text (two-space indent, like upstream's default).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Keep integral floats readable ("3.0", not "3"): upstream prints
        // the shortest representation that round-trips, which for whole
        // floats includes the ".0".
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

/// Builds a [`Value`] from a JSON-looking literal. Supports the forms the
/// workspace uses: object literals with string-literal keys and expression
/// values (which may themselves be nested `json!` calls), array literals of
/// expressions, `null`, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$value))),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$item)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_arrays_and_exprs() {
        let dim = 32usize;
        let v = json!({
            "dim": dim,
            "time": 1.5f64,
            "name": "cora",
            "missing": Option::<u64>::None,
            "nested": json!({"a": 1u64}),
            "list": json!([1u64, 2u64]),
        });
        assert_eq!(v.get("dim").and_then(Value::as_u64), Some(32));
        assert_eq!(v.get("missing"), Some(&Value::Null));
        assert_eq!(v.get("nested").and_then(|n| n.get("a")).and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("list").and_then(Value::as_array).map(Vec::len), Some(2));
    }

    #[test]
    fn pretty_printing_shape() {
        let v = json!({"a": 1u64, "b": json!([true])});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains('\n'));
        assert_eq!(to_string(&v).unwrap(), "{\"a\":1,\"b\":[true]}");
    }

    #[test]
    fn escaping_and_floats() {
        let s = to_string(&json!({"k\"ey": "a\nb"})).unwrap();
        assert_eq!(s, "{\"k\\\"ey\":\"a\\nb\"}");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&3.25f64).unwrap(), "3.25");
    }

    #[test]
    fn text_round_trip() {
        let v = json!({
            "i": -4i64,
            "u": 7u64,
            "f": 0.5f64,
            "s": "hi",
            "b": true,
            "n": Option::<u64>::None,
            "arr": json!([1u64, 2u64])
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
