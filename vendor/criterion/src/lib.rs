//! Offline shim for the `criterion` crate.
//!
//! Keeps the upstream API the workspace's benches use (`Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`, `black_box`) but replaces the statistical engine with
//! a plain wall-clock loop: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a measurement window, and the mean
//! ns/iteration is printed. Good enough for the relative before/after
//! comparisons this repo's perf work needs; not a replacement for real
//! criterion confidence intervals.
//!
//! Environment knobs: `SEQGE_BENCH_FAST=1` shrinks the windows (used to
//! smoke-test bench binaries), `CRITERION_MEASURE_MS` overrides the
//! measurement window per benchmark.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `new("label", param)` or `from_parameter(param)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the routine.
pub struct Bencher<'a> {
    measured: &'a mut Measurement,
    warmup: Duration,
    measure: Duration,
}

#[derive(Default)]
struct Measurement {
    iterations: u64,
    elapsed: Duration,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measure.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.measured.elapsed = start.elapsed();
        self.measured.iterations = target;
    }
}

fn window(env: &str, default_ms: u64) -> Duration {
    let fast = std::env::var("SEQGE_BENCH_FAST").map(|v| v == "1").unwrap_or(false);
    let ms = std::env::var(env).ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(if fast {
        5
    } else {
        default_ms
    });
    Duration::from_millis(ms)
}

fn run_one(group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut m = Measurement::default();
    let mut b = Bencher {
        measured: &mut m,
        warmup: window("CRITERION_WARMUP_MS", 60),
        measure: window("CRITERION_MEASURE_MS", 240),
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if m.iterations == 0 {
        println!("{full:<48} (no iterations recorded)");
        return;
    }
    let ns = m.elapsed.as_nanos() as f64 / m.iterations as f64;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    println!("{full:<48} {human:>12}/iter  ({} iters)", m.iterations);
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(Some(&self.name), &id.into_id(), &mut f);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup { name, _criterion: self }
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(None, &id.into_id(), &mut f);
        self
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f, g, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        std::env::set_var("SEQGE_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .bench_function(BenchmarkId::new("sum", 8), |b| b.iter(|| (0..8u64).sum::<u64>()));
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
