//! Offline shim for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (a `Value`-tree data model, see `vendor/serde`). The parser is
//! deliberately small: it supports the shapes this workspace derives on —
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit or single-field tuples,
//!
//! and fails with a compile error on anything else, so unsupported shapes
//! surface at build time instead of serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<(String, usize)> },
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "derive shim supports only brace-bodied, non-generic types \
                 (while deriving for `{name}`, got {other:?})"
            ))
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct { fields: parse_struct_fields(body)? },
        "enum" => Shape::Enum { variants: parse_enum_variants(body)? },
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input { name, shape })
}

/// Field names of a named-field struct body. Commas inside `<...>` belong to
/// the field's type, so angle-bracket depth is tracked while scanning for
/// the field separator.
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// `(variant name, tuple arity)` pairs; arity 0 = unit variant. Only arities
/// 0 and 1 are supported (the shapes serde's externally-tagged JSON uses in
/// this workspace).
fn parse_enum_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut angle_depth = 0i32;
                let mut commas = 0usize;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            commas += 1
                        }
                        _ => {}
                    }
                }
                arity = if inner.is_empty() { 0 } else { commas + 1 };
                if arity > 1 {
                    return Err(format!(
                        "variant `{name}`: only unit and single-field tuple variants \
                         are supported by the derive shim"
                    ));
                }
                i += 1;
            } else if g.delimiter() == Delimiter::Brace {
                return Err(format!("variant `{name}`: struct variants are unsupported"));
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())")
                    } else {
                        format!(
                            "{name}::{v}(ref __f0) => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        )
                    }
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v})"))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 1)
                .map(|(v, _)| {
                    format!(
                        "if let Some(__inner) = ::serde::__private::newtype_variant(__v, \"{v}\") \
                         {{ return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)); }}"
                    )
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(ref __s) = *__v {{\n\
                     match __s.as_str() {{ {unit} _ => {{}} }}\n\
                 }}\n\
                 {newtypes}\n\
                 Err(::serde::DeError(format!(\
                     \"no variant of `{name}` matches {{:?}}\", __v)))",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                newtypes = newtype_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
