//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the 0.8 API this workspace uses — `SeedableRng`,
//! `rngs::StdRng`, and `Rng::{gen, gen_range, gen_bool}` — over a
//! xoshiro256** core (the same generator family as `seqge_sampling::Rng64`,
//! but with an independent stream layout; graph generators seeded through
//! this shim are deterministic per seed and platform-independent, which is
//! the property the experiment harness relies on).

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided; that is the one
/// entry point the workspace calls).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range abstraction for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Type abstraction for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a sample from the standard distribution of `Self`.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Lemire's multiply-shift bounded sampler (unbiased).
fn below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range over an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= lo.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_ranges!(f64, f32);

/// The user-facing convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Standard-distribution sample (`f64`/`f32` in `[0,1)`, full-range
    /// integers).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256**-backed replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion; never yields the all-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
        assert_ne!(StdRng::seed_from_u64(1).gen::<f64>(), StdRng::seed_from_u64(2).gen::<f64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&y));
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let f = hits as f64 / 20_000.0;
        assert!((f - 0.25).abs() < 0.02, "frequency {f}");
    }
}
