//! The JSON value tree shared by the `serde` and `serde_json` shims.

/// A JSON value. Object entries preserve insertion order (the derive emits
/// fields in declaration order, which keeps result files stable and
/// diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object-field or array-index access, mirroring `serde_json`'s `get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `self` as an `f64` when it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// `self` as a `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// `self` as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `self` as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
