//! Offline shim for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization facade under the same crate name. It supports
//! exactly the surface this repository uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on named-field structs, on enums of
//!   unit variants, and on enums with single-field tuple variants
//!   (externally tagged, matching upstream serde's JSON representation);
//! * serialization into the [`Value`] tree consumed by the `serde_json`
//!   shim (`json!`, `to_string_pretty`, `to_vec`, `from_slice`).
//!
//! The data model is deliberately `Value`-based rather than visitor-based:
//! every `Serialize` type renders to a [`Value`], every `Deserialize` type
//! parses from one. That is all the experiment harness and the persistence
//! layer need, and it keeps the shim small and obviously correct.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value serializable into the JSON [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// A value reconstructible from the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support items referenced by the derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up struct field `name` in an object value and deserializes it.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => T::from_value(fv),
                None => Err(DeError(format!("missing field `{name}`"))),
            },
            other => {
                Err(DeError(format!("expected object with field `{name}`, got {}", other.kind())))
            }
        }
    }

    /// Matches an externally-tagged newtype enum variant `{ "Name": inner }`.
    pub fn newtype_variant<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
        match v {
            Value::Object(entries) if entries.len() == 1 && entries[0].0 == name => {
                Some(&entries[0].1)
            }
            _ => None,
        }
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected unsigned integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-element array, got {}", $len, other.kind()
                    ))),
                }
            }
        }
    )+};
}

de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);

/// `&'static str` deserialization leaks the parsed string. Upstream serde
/// borrows from the input instead; this shim's value tree can't lend
/// `'static` data, and the only such fields in the workspace are a handful
/// of device/platform names, so the leak is bounded and acceptable.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn cross_width_numbers_deserialize() {
        // JSON has one number type; integer values must load into floats
        // and vice versa when exact.
        assert_eq!(f32::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::F64(5.0)).unwrap(), 5);
        assert!(u64::from_value(&Value::F64(5.5)).is_err());
    }
}
